package feed

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
)

func TestPlaintextParser(t *testing.T) {
	doc := `# malware domains feed
evil.example
; another comment style

bad.example # inline comment
hxxp://defanged[.]example/path
`
	records, err := PlaintextParser{}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"evil.example", "bad.example", "hxxp://defanged[.]example/path"}
	if len(records) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(records), len(want), records)
	}
	for i, rec := range records {
		if rec.Value != want[i] {
			t.Errorf("record %d = %q, want %q", i, rec.Value, want[i])
		}
	}
}

func TestCSVParserWithHeader(t *testing.T) {
	doc := "indicator,first_seen,description\nevil.example,2019-06-01,c2 host\n203.0.113.7,2019-06-02,\n"
	records, err := CSVParser{ValueColumn: 0, HasHeader: true}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0].Value != "evil.example" || records[0].Context["description"] != "c2 host" {
		t.Fatalf("record 0 = %+v", records[0])
	}
	if records[0].Context["first_seen"] != "2019-06-01" {
		t.Fatalf("header-named context missing: %+v", records[0].Context)
	}
	if _, ok := records[1].Context["description"]; ok {
		t.Fatal("empty field should not enter context")
	}
}

func TestCSVParserNoHeaderCustomDelimiter(t *testing.T) {
	doc := "203.0.113.7|scanner|22\n203.0.113.8|bruteforce|23\n"
	records, err := CSVParser{Comma: '|', ValueColumn: 0}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0].Context["col1"] != "scanner" || records[0].Context["col2"] != "22" {
		t.Fatalf("context = %+v", records[0].Context)
	}
}

func TestCSVParserComments(t *testing.T) {
	doc := "# header comment\n1.2.3.4,x\n"
	records, err := CSVParser{ValueColumn: 0, Comment: '#'}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Value != "1.2.3.4" {
		t.Fatalf("records = %+v", records)
	}
}

func TestCSVParserShortRowsSkipped(t *testing.T) {
	doc := "a,b\nvalue-only\n"
	records, err := CSVParser{ValueColumn: 1}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Value != "b" {
		t.Fatalf("records = %+v", records)
	}
}

func TestMISPFeedParserSingleEvent(t *testing.T) {
	e := misp.NewEvent("OSINT feed event", time.Date(2019, 6, 24, 0, 0, 0, 0, time.UTC))
	e.AddAttribute("domain", "Network activity", "evil.example", e.Timestamp.Time).Comment = "c2"
	e.AddAttribute("ip-dst", "Network activity", "203.0.113.7", e.Timestamp.Time)
	data, err := misp.MarshalWrapped(e)
	if err != nil {
		t.Fatal(err)
	}
	records, err := MISPFeedParser{}.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	if records[0].Value != "evil.example" || records[0].Context["misp_type"] != "domain" {
		t.Fatalf("record 0 = %+v", records[0])
	}
	if records[0].Context["description"] != "c2" {
		t.Fatalf("comment not propagated: %+v", records[0].Context)
	}
}

func TestMISPFeedParserArray(t *testing.T) {
	now := time.Date(2019, 6, 24, 0, 0, 0, 0, time.UTC)
	e1 := misp.NewEvent("one", now)
	e1.AddAttribute("domain", "Network activity", "a.example", now)
	e2 := misp.NewEvent("two", now)
	e2.AddAttribute("domain", "Network activity", "b.example", now)
	doc := fmt.Sprintf(`[{"Event":%s},{"Event":%s}]`, mustJSON(t, e1), mustJSON(t, e2))
	records, err := MISPFeedParser{}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
}

func TestMISPFeedParserRejectsGarbage(t *testing.T) {
	if _, err := (MISPFeedParser{}).Parse([]byte(`{"not":"an event"}`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := (MISPFeedParser{}).Parse([]byte(`[{"not":"wrapped"`)); err == nil {
		t.Fatal("truncated array accepted")
	}
}

func TestAdvisoryParser(t *testing.T) {
	doc := `[
	  {"cve":"CVE-2017-9805","description":"Apache Struts RCE",
	   "cvss3":"CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
	   "products":["apache struts","apache"],"os":"debian",
	   "published":"2017-09-13","references":["https://capec.example/248"]},
	  {"cve":"","description":"missing id is skipped"},
	  {"cve":"CVE-2019-0001","cvss2":"AV:N/AC:L/Au:N/C:P/I:P/A:P"}
	]`
	records, err := AdvisoryParser{}.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	first := records[0]
	if first.Value != "CVE-2017-9805" {
		t.Fatalf("value = %q", first.Value)
	}
	for _, key := range []string{"description", "cvss-vector", "products", "os", "published", "references"} {
		if first.Context[key] == "" {
			t.Errorf("context[%s] empty: %+v", key, first.Context)
		}
	}
	if records[1].Context["cvss2-vector"] == "" {
		t.Fatalf("cvss2 fallback missing: %+v", records[1].Context)
	}
}

func TestAdvisoryParserRejectsGarbage(t *testing.T) {
	if _, err := (AdvisoryParser{}).Parse([]byte(`{"not":"array"}`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHTTPFetcherConditionalGet(t *testing.T) {
	var requests int
	var gotINM string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		gotINM = r.Header.Get("If-None-Match")
		if gotINM == `"v1"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", `"v1"`)
		fmt.Fprintln(w, "evil.example")
	}))
	defer srv.Close()

	f := &HTTPFetcher{URL: srv.URL}
	data, notModified, err := f.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("first fetch: %v %v", notModified, err)
	}
	if string(data) != "evil.example\n" {
		t.Fatalf("data = %q", data)
	}
	_, notModified, err = f.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !notModified {
		t.Fatal("second fetch should be not-modified")
	}
	if requests != 2 || gotINM != `"v1"` {
		t.Fatalf("requests=%d, If-None-Match=%q", requests, gotINM)
	}
}

func TestHTTPFetcherErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	f := &HTTPFetcher{URL: srv.URL}
	if _, _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("500 not reported")
	}
	f2 := &HTTPFetcher{URL: "http://127.0.0.1:1/unreachable"}
	if _, _, err := f2.Fetch(context.Background()); err == nil {
		t.Fatal("connection error not reported")
	}
}

func TestHTTPFetcherSizeLimit(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "0123456789")
	}))
	defer srv.Close()
	f := &HTTPFetcher{URL: srv.URL, MaxBytes: 5}
	if _, _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("oversized body accepted")
	}
}

func TestFileFetcher(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feed.txt")
	if err := os.WriteFile(path, []byte("evil.example\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &FileFetcher{Path: path}
	data, notModified, err := f.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("first fetch: %v %v", notModified, err)
	}
	if string(data) != "evil.example\n" {
		t.Fatalf("data = %q", data)
	}
	_, notModified, err = f.Fetch(context.Background())
	if err != nil || !notModified {
		t.Fatalf("second fetch: notModified=%v err=%v", notModified, err)
	}
	// Touch the file into the future → modified again.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	_, notModified, err = f.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("after touch: notModified=%v err=%v", notModified, err)
	}
	missing := &FileFetcher{Path: filepath.Join(t.TempDir(), "absent")}
	if _, _, err := missing.Fetch(context.Background()); err == nil {
		t.Fatal("missing file not reported")
	}
}

func collectSink() (func(normalize.Event), func() []normalize.Event) {
	var mu sync.Mutex
	var events []normalize.Event
	sink := func(e normalize.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	snapshot := func() []normalize.Event {
		mu.Lock()
		defer mu.Unlock()
		out := make([]normalize.Event, len(events))
		copy(out, events)
		return out
	}
	return sink, snapshot
}

func TestSchedulerPollOnce(t *testing.T) {
	sink, snapshot := collectSink()
	fake := clock.NewFake(time.Date(2019, 6, 24, 10, 0, 0, 0, time.UTC))
	s := NewScheduler(sink, WithClock(fake))
	err := s.Add(Feed{
		Name:     "malware-domains",
		Category: normalize.CategoryMalwareDomain,
		Fetcher:  &StaticFetcher{Data: []byte("evil.example\nbad.example\nnot a valid value with spaces\n")},
		Parser:   PlaintextParser{},
		Interval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PollOnce(context.Background())
	events := snapshot()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Source != "malware-domains" || events[0].Category != normalize.CategoryMalwareDomain {
		t.Fatalf("provenance wrong: %+v", events[0])
	}
	if !events[0].FirstSeen.Equal(fake.Now()) {
		t.Fatalf("seen time = %v, want %v", events[0].FirstSeen, fake.Now())
	}
	st := s.Stats()["malware-domains"]
	if st.Fetches != 1 || st.Records != 3 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerValidation(t *testing.T) {
	s := NewScheduler(func(normalize.Event) {})
	if err := s.Add(Feed{Name: ""}); err == nil {
		t.Fatal("empty feed accepted")
	}
	valid := Feed{
		Name:     "f",
		Fetcher:  &StaticFetcher{},
		Parser:   PlaintextParser{},
		Interval: time.Second,
	}
	if err := s.Add(valid); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(valid); err == nil {
		t.Fatal("duplicate name accepted")
	}
	bad := valid
	bad.Name = "g"
	bad.Interval = 0
	if err := s.Add(bad); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestSchedulerPeriodicPolling(t *testing.T) {
	sink, snapshot := collectSink()
	fake := clock.NewFake(time.Unix(0, 0))
	s := NewScheduler(sink, WithClock(fake))

	fetcher := &countingFetcher{}
	if err := s.Add(Feed{
		Name:     "periodic",
		Category: normalize.CategoryScanner,
		Fetcher:  fetcher,
		Parser:   PlaintextParser{},
		Interval: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
	// First poll happens immediately.
	waitForEvents(t, snapshot, 1)
	// Advance the fake clock → next polls.
	fake.Advance(time.Minute)
	waitForEvents(t, snapshot, 2)
	fake.Advance(time.Minute)
	waitForEvents(t, snapshot, 3)
	s.Stop()

	st := s.Stats()["periodic"]
	if st.Fetches < 3 {
		t.Fatalf("fetches = %d, want ≥ 3", st.Fetches)
	}
	if got := s.FeedNames(); len(got) != 1 || got[0] != "periodic" {
		t.Fatalf("FeedNames = %v", got)
	}
}

func TestSchedulerErrorAndMalformedCounters(t *testing.T) {
	sink, _ := collectSink()
	s := NewScheduler(sink)
	if err := s.Add(Feed{
		Name:     "broken",
		Fetcher:  &failingFetcher{},
		Parser:   PlaintextParser{},
		Interval: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Feed{
		Name:     "unparsable",
		Fetcher:  &StaticFetcher{Data: []byte(`{"not":"advisories"}`)},
		Parser:   AdvisoryParser{},
		Interval: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	s.PollOnce(context.Background())
	stats := s.Stats()
	if stats["broken"].Errors != 1 {
		t.Fatalf("broken stats = %+v", stats["broken"])
	}
	if stats["unparsable"].Errors != 1 {
		t.Fatalf("unparsable stats = %+v", stats["unparsable"])
	}
}

type countingFetcher struct {
	mu sync.Mutex
	n  int
}

func (f *countingFetcher) Fetch(context.Context) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	return []byte(fmt.Sprintf("host-%d.example\n", f.n)), false, nil
}

type failingFetcher struct{}

func (failingFetcher) Fetch(context.Context) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("synthetic outage")
}

func waitForEvents(t *testing.T, snapshot func() []normalize.Event, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for len(snapshot()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d events after 3s, want %d", len(snapshot()), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustJSON(t *testing.T, e *misp.Event) string {
	t.Helper()
	data, err := misp.MarshalWrapped(e)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the {"Event": …} wrapper; callers re-wrap.
	return string(data[9 : len(data)-1])
}

func TestSchedulerBacksOffAfterErrors(t *testing.T) {
	sink, _ := collectSink()
	fake := clock.NewFake(time.Unix(0, 0))
	s := NewScheduler(sink, WithClock(fake))
	fetcher := &flakyFetcher{failuresRemaining: 100}
	if err := s.Add(Feed{
		Name:     "flaky",
		Fetcher:  fetcher,
		Parser:   PlaintextParser{},
		Interval: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	waitForFetches(t, s, "flaky", 1) // immediate poll fails

	// After one failure the next wait is 2× interval: advancing by one
	// interval must NOT trigger a poll; a further advance past 2× must.
	fake.Advance(time.Minute)
	assertNoMoreFetches(t, s, "flaky", 1)
	fake.Advance(time.Minute)
	waitForFetches(t, s, "flaky", 2)

	// After two failures the wait is 4× interval.
	fake.Advance(3 * time.Minute)
	assertNoMoreFetches(t, s, "flaky", 2)
	fake.Advance(time.Minute)
	waitForFetches(t, s, "flaky", 3)

	// A success resets the backoff to the plain interval.
	fetcher.succeedNow()
	fake.Advance(8 * time.Minute) // clears the current (8×) backoff
	waitForFetches(t, s, "flaky", 4)
	fake.Advance(time.Minute)
	waitForFetches(t, s, "flaky", 5)
}

type flakyFetcher struct {
	mu                sync.Mutex
	failuresRemaining int
}

func (f *flakyFetcher) succeedNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failuresRemaining = 0
}

func (f *flakyFetcher) Fetch(context.Context) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failuresRemaining > 0 {
		f.failuresRemaining--
		return nil, false, fmt.Errorf("synthetic outage")
	}
	return []byte("ok.example\n"), false, nil
}

func waitForFetches(t *testing.T, s *Scheduler, name string, n int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for s.Stats()[name].Fetches < n {
		if time.Now().After(deadline) {
			t.Fatalf("fetches = %d after 3s, want %d", s.Stats()[name].Fetches, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func assertNoMoreFetches(t *testing.T, s *Scheduler, name string, n int) {
	t.Helper()
	time.Sleep(30 * time.Millisecond)
	if got := s.Stats()[name].Fetches; got != n {
		t.Fatalf("fetches = %d, want still %d (backoff not honoured)", got, n)
	}
}
