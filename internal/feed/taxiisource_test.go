package feed

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/taxii"
)

var taxiiNow = time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

func taxiiRig(t *testing.T) (*taxii.Server, *TAXIIFetcher) {
	t.Helper()
	srv := taxii.NewServer("peer org", "peer")
	srv.AddCollection("shared", "Shared intel", "", true)
	httpSrv := httptest.NewServer(srv)
	t.Cleanup(httpSrv.Close)
	fetcher := &TAXIIFetcher{
		Client:       taxii.NewClient(httpSrv.URL, ""),
		APIRoot:      "peer",
		CollectionID: "shared",
	}
	return srv, fetcher
}

func TestTAXIIFetcherIncremental(t *testing.T) {
	srv, fetcher := taxiiRig(t)

	// Empty collection → not modified.
	_, notModified, err := fetcher.Fetch(context.Background())
	if err != nil || !notModified {
		t.Fatalf("empty poll: notModified=%v err=%v", notModified, err)
	}

	v := stix.NewVulnerability("CVE-2017-9805", "struts RCE", taxiiNow)
	v.SetExtra("x_caisp_cvss_vector", "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H")
	v.SetExtra("x_caisp_products", "apache struts,apache")
	if err := srv.AddObjects("shared", v); err != nil {
		t.Fatal(err)
	}
	data, notModified, err := fetcher.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("poll with content: notModified=%v err=%v", notModified, err)
	}
	records, err := (STIXBundleParser{}).Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Value != "CVE-2017-9805" {
		t.Fatalf("records = %+v", records)
	}
	if records[0].Context["cvss-vector"] == "" || records[0].Context["products"] == "" {
		t.Fatalf("context lost: %+v", records[0].Context)
	}

	// Same objects again → not modified; a new object → only the new one.
	_, notModified, err = fetcher.Fetch(context.Background())
	if err != nil || !notModified {
		t.Fatalf("repeat poll: notModified=%v err=%v", notModified, err)
	}
	ind := stix.NewIndicator("[domain-name:value = 'evil.example' OR ipv4-addr:value = '203.0.113.7']",
		[]string{"malicious-activity"}, taxiiNow)
	if err := srv.AddObjects("shared", ind); err != nil {
		t.Fatal(err)
	}
	data, notModified, err = fetcher.Fetch(context.Background())
	if err != nil || notModified {
		t.Fatalf("incremental poll: notModified=%v err=%v", notModified, err)
	}
	records, err = (STIXBundleParser{}).Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("indicator records = %+v", records)
	}
	values := map[string]bool{records[0].Value: true, records[1].Value: true}
	if !values["evil.example"] || !values["203.0.113.7"] {
		t.Fatalf("pattern values = %v", values)
	}
}

func TestTAXIIFetcherValidation(t *testing.T) {
	f := &TAXIIFetcher{}
	if _, _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("nil client accepted")
	}
}

func TestSTIXBundleParserGarbage(t *testing.T) {
	if _, err := (STIXBundleParser{}).Parse([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEqualityValues(t *testing.T) {
	tests := []struct {
		pattern string
		want    int
	}{
		{pattern: "[a:b = 'x']", want: 1},
		{pattern: "[a:b = 'x' AND c:d = 'y'] FOLLOWEDBY [e:f = 'z']", want: 3},
		{pattern: "[a:b != 'x']", want: 0},
		{pattern: "[a:b NOT = 'x']", want: 0},
		{pattern: "[a:b > 5]", want: 0},
		{pattern: "not parseable", want: 0},
	}
	for _, tt := range tests {
		if got := len(equalityValues(tt.pattern)); got != tt.want {
			t.Errorf("equalityValues(%q) = %d values, want %d", tt.pattern, got, tt.want)
		}
	}
}

func TestTAXIIFeedThroughScheduler(t *testing.T) {
	srv, fetcher := taxiiRig(t)
	v := stix.NewVulnerability("CVE-2016-5195", "dirty cow", taxiiNow)
	if err := srv.AddObjects("shared", v); err != nil {
		t.Fatal(err)
	}
	sink, snapshot := collectSink()
	s := NewScheduler(sink)
	if err := s.Add(Feed{
		Name:     "peer-taxii",
		Category: "vulnerability-exploitation",
		Fetcher:  fetcher,
		Parser:   STIXBundleParser{},
		Interval: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	s.PollOnce(context.Background())
	events := snapshot()
	if len(events) != 1 || events[0].Value != "CVE-2016-5195" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Source != "peer-taxii" {
		t.Fatalf("source = %q", events[0].Source)
	}
}
