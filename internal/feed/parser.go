// Package feed implements the OSINT feed framework of the Input Module:
// configured feeds are fetched on a schedule, parsed from their native
// format (plaintext lists, CSV, MISP feed JSON, CVE advisory JSON), and the
// records handed to the normalization stage. The paper motivates exactly
// this heterogeneity: "Normalization is required since OSINT data comes in
// various formats, such as plaintext and csv" (§III-A1).
package feed

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/caisplatform/caisp/internal/misp"
)

// Record is one raw datum extracted from a feed document.
type Record struct {
	// Value is the indicator value as the feed published it (possibly
	// defanged — normalization refangs it).
	Value string
	// Category optionally overrides the feed's default threat category.
	Category string
	// Context carries additional columns/fields from the feed.
	Context map[string]string
}

// Parser turns one fetched feed document into records.
type Parser interface {
	// Parse extracts records from a feed document.
	Parse(data []byte) ([]Record, error)
}

// PlaintextParser parses one-indicator-per-line lists. Lines starting with
// '#' or ';' and blank lines are skipped; inline comments after whitespace+#
// are stripped.
type PlaintextParser struct{}

// Parse implements Parser.
func (PlaintextParser) Parse(data []byte) ([]Record, error) {
	var out []Record
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if i := strings.Index(line, " #"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		out = append(out, Record{Value: line})
	}
	return out, nil
}

// CSVParser parses delimited feeds. The value is taken from ValueColumn;
// all other columns land in Context keyed by header name (or "col<N>"
// without a header row).
type CSVParser struct {
	// Comma is the field delimiter; ',' if zero.
	Comma rune
	// ValueColumn is the zero-based index of the indicator column.
	ValueColumn int
	// HasHeader indicates the first row names the columns.
	HasHeader bool
	// Comment, if non-zero, starts a skipped line.
	Comment rune
}

// Parse implements Parser.
func (p CSVParser) Parse(data []byte) ([]Record, error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	if p.Comma != 0 {
		r.Comma = p.Comma
	}
	if p.Comment != 0 {
		r.Comment = p.Comment
	}
	r.FieldsPerRecord = -1
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("feed: parse csv: %w", err)
	}
	var header []string
	if p.HasHeader && len(rows) > 0 {
		header = rows[0]
		rows = rows[1:]
	}
	var out []Record
	for _, row := range rows {
		if p.ValueColumn >= len(row) {
			continue
		}
		value := strings.TrimSpace(row[p.ValueColumn])
		if value == "" {
			continue
		}
		rec := Record{Value: value}
		for i, field := range row {
			if i == p.ValueColumn || strings.TrimSpace(field) == "" {
				continue
			}
			key := fmt.Sprintf("col%d", i)
			if i < len(header) && strings.TrimSpace(header[i]) != "" {
				key = strings.TrimSpace(header[i])
			}
			if rec.Context == nil {
				rec.Context = make(map[string]string)
			}
			rec.Context[key] = strings.TrimSpace(field)
		}
		out = append(out, rec)
	}
	return out, nil
}

// MISPFeedParser parses a MISP-format feed document: either a single
// wrapped event or an array of wrapped events. Attribute values become
// records with the attribute type and event info as context.
type MISPFeedParser struct{}

// Parse implements Parser.
func (MISPFeedParser) Parse(data []byte) ([]Record, error) {
	events, err := decodeMISPDocument(data)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, e := range events {
		for _, a := range e.Attributes {
			rec := Record{
				Value: a.Value,
				Context: map[string]string{
					"misp_type":  a.Type,
					"event_info": e.Info,
				},
			}
			if a.Comment != "" {
				rec.Context["description"] = a.Comment
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

func decodeMISPDocument(data []byte) ([]*misp.Event, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var wrapped []misp.Wrapped
		if err := json.Unmarshal(data, &wrapped); err != nil {
			return nil, fmt.Errorf("feed: parse misp feed array: %w", err)
		}
		events := make([]*misp.Event, 0, len(wrapped))
		for _, w := range wrapped {
			if w.Event != nil {
				events = append(events, w.Event)
			}
		}
		return events, nil
	}
	e, err := misp.UnmarshalWrapped(data)
	if err != nil {
		return nil, fmt.Errorf("feed: parse misp feed: %w", err)
	}
	return []*misp.Event{e}, nil
}

// Advisory is one entry of a CVE advisory feed.
type Advisory struct {
	CVE         string   `json:"cve"`
	Description string   `json:"description,omitempty"`
	CVSS3       string   `json:"cvss3,omitempty"`
	CVSS2       string   `json:"cvss2,omitempty"`
	Products    []string `json:"products,omitempty"`
	OS          string   `json:"os,omitempty"`
	Published   string   `json:"published,omitempty"`
	References  []string `json:"references,omitempty"`
}

// AdvisoryParser parses JSON arrays of vulnerability advisories, the shape
// the synthetic feed generator emits for "vulnerability exploitation"
// feeds.
type AdvisoryParser struct{}

// Parse implements Parser.
func (AdvisoryParser) Parse(data []byte) ([]Record, error) {
	var advisories []Advisory
	if err := json.Unmarshal(data, &advisories); err != nil {
		return nil, fmt.Errorf("feed: parse advisories: %w", err)
	}
	var out []Record
	for _, a := range advisories {
		if a.CVE == "" {
			continue
		}
		rec := Record{Value: a.CVE, Context: make(map[string]string, 6)}
		if a.Description != "" {
			rec.Context["description"] = a.Description
		}
		if a.CVSS3 != "" {
			rec.Context["cvss-vector"] = a.CVSS3
		} else if a.CVSS2 != "" {
			rec.Context["cvss2-vector"] = a.CVSS2
		}
		if len(a.Products) > 0 {
			rec.Context["products"] = strings.Join(a.Products, ",")
		}
		if a.OS != "" {
			rec.Context["os"] = a.OS
		}
		if a.Published != "" {
			rec.Context["published"] = a.Published
		}
		if len(a.References) > 0 {
			rec.Context["references"] = strings.Join(a.References, ",")
		}
		out = append(out, rec)
	}
	return out, nil
}
