package feed

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/obs"
)

// Feed couples a named source with its fetcher, parser and schedule.
type Feed struct {
	// Name identifies the feed in event provenance and stats.
	Name string
	// Category is the default threat category for the feed's records.
	Category string
	// Fetcher retrieves the feed document.
	Fetcher Fetcher
	// Parser extracts records from the document.
	Parser Parser
	// Interval is the polling period (schedulers reject <= 0).
	Interval time.Duration
}

// Stats counts one feed's activity.
type Stats struct {
	Fetches     int `json:"fetches"`
	NotModified int `json:"not_modified"`
	Errors      int `json:"errors"`
	Records     int `json:"records"`
	Malformed   int `json:"malformed"`
}

// Scheduler polls a set of feeds and emits normalized events to a sink.
// The sink must be safe for concurrent use: feeds poll from parallel
// goroutines in streaming mode and from a bounded worker pool in PollOnce.
type Scheduler struct {
	clk         clock.Clock
	sink        func(normalize.Event)
	logger      *slog.Logger
	concurrency int
	metrics     *schedMetrics

	mu      sync.Mutex
	feeds   []Feed
	stats   map[string]*Stats
	started bool
	cancel  context.CancelFunc
	done    sync.WaitGroup
}

// Option configures a Scheduler.
type Option interface{ apply(*Scheduler) }

type clockOption struct{ clk clock.Clock }

func (o clockOption) apply(s *Scheduler) { s.clk = o.clk }

// WithClock substitutes the scheduler's clock (tests use a fake).
func WithClock(clk clock.Clock) Option { return clockOption{clk: clk} }

type loggerOption struct{ logger *slog.Logger }

func (o loggerOption) apply(s *Scheduler) { s.logger = o.logger }

// WithLogger sets the scheduler's logger.
func WithLogger(logger *slog.Logger) Option { return loggerOption{logger: logger} }

type concurrencyOption int

func (o concurrencyOption) apply(s *Scheduler) { s.concurrency = int(o) }

// WithConcurrency bounds how many feeds PollOnce fetches and parses in
// parallel. Values below 1 (the default) use GOMAXPROCS.
func WithConcurrency(n int) Option { return concurrencyOption(n) }

// schedMetrics are the per-feed caisp_feed_* families. A nil value (no
// registry) disables instrumentation at one pointer check per poll.
type schedMetrics struct {
	fetches     *obs.CounterVec   // caisp_feed_fetches_total{feed}
	errors      *obs.CounterVec   // caisp_feed_errors_total{feed}
	notModified *obs.CounterVec   // caisp_feed_not_modified_total{feed}
	records     *obs.CounterVec   // caisp_feed_records_total{feed}
	malformed   *obs.CounterVec   // caisp_feed_malformed_total{feed}
	bytes       *obs.CounterVec   // caisp_feed_fetch_bytes_total{feed}
	fetchDur    *obs.HistogramVec // caisp_feed_fetch_seconds{feed}
}

type schedMetricsOption struct{ reg *obs.Registry }

func (o schedMetricsOption) apply(s *Scheduler) {
	if o.reg == nil {
		return
	}
	s.metrics = &schedMetrics{
		fetches: o.reg.CounterVec("caisp_feed_fetches_total",
			"Fetch attempts per feed.", "feed"),
		errors: o.reg.CounterVec("caisp_feed_errors_total",
			"Failed fetches or parses per feed.", "feed"),
		notModified: o.reg.CounterVec("caisp_feed_not_modified_total",
			"Fetches answered not-modified per feed.", "feed"),
		records: o.reg.CounterVec("caisp_feed_records_total",
			"Records parsed and normalized per feed.", "feed"),
		malformed: o.reg.CounterVec("caisp_feed_malformed_total",
			"Records rejected by normalization per feed.", "feed"),
		bytes: o.reg.CounterVec("caisp_feed_fetch_bytes_total",
			"Bytes fetched per feed.", "feed"),
		fetchDur: o.reg.HistogramVec("caisp_feed_fetch_seconds",
			"Fetch wall time per feed, including not-modified probes.", nil, "feed"),
	}
}

// WithMetrics registers the scheduler's caisp_feed_* families into reg
// (nil disables instrumentation).
func WithMetrics(reg *obs.Registry) Option { return schedMetricsOption{reg: reg} }

// NewScheduler builds a scheduler delivering normalized events to sink.
func NewScheduler(sink func(normalize.Event), opts ...Option) *Scheduler {
	s := &Scheduler{
		clk:    clock.Real(),
		sink:   sink,
		logger: slog.Default(),
		stats:  make(map[string]*Stats),
	}
	for _, o := range opts {
		o.apply(s)
	}
	return s
}

// Add registers a feed. It returns an error after Start, or for an invalid
// feed definition.
func (s *Scheduler) Add(f Feed) error {
	if f.Name == "" || f.Fetcher == nil || f.Parser == nil {
		return fmt.Errorf("feed: incomplete feed definition %q", f.Name)
	}
	if f.Interval <= 0 {
		return fmt.Errorf("feed: feed %q has non-positive interval", f.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("feed: scheduler already started")
	}
	for _, existing := range s.feeds {
		if existing.Name == f.Name {
			return fmt.Errorf("feed: duplicate feed name %q", f.Name)
		}
	}
	s.feeds = append(s.feeds, f)
	s.stats[f.Name] = &Stats{}
	return nil
}

// Start launches one polling goroutine per feed. Each feed is fetched
// immediately and then every Interval. Stop (or ctx cancellation) ends
// polling.
func (s *Scheduler) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("feed: scheduler already started")
	}
	s.started = true
	ctx, s.cancel = context.WithCancel(ctx)
	feeds := make([]Feed, len(s.feeds))
	copy(feeds, s.feeds)
	s.mu.Unlock()

	for _, f := range feeds {
		f := f
		s.done.Add(1)
		go func() {
			defer s.done.Done()
			s.pollLoop(ctx, f)
		}()
	}
	return nil
}

// Stop cancels polling and waits for the workers to exit.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.done.Wait()
}

// PollOnce synchronously fetches every registered feed a single time —
// batch mode for examples and the experiment harness. Independent feeds
// are fetched and parsed by a bounded worker pool (see WithConcurrency);
// PollOnce returns once every feed has been processed.
func (s *Scheduler) PollOnce(ctx context.Context) {
	s.mu.Lock()
	feeds := make([]Feed, len(s.feeds))
	copy(feeds, s.feeds)
	s.mu.Unlock()

	workers := s.concurrency
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(feeds) {
		workers = len(feeds)
	}
	if workers <= 1 {
		for _, f := range feeds {
			s.pollFeed(ctx, f)
		}
		return
	}
	queue := make(chan Feed)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range queue {
				s.pollFeed(ctx, f)
			}
		}()
	}
	for _, f := range feeds {
		queue <- f
	}
	close(queue)
	wg.Wait()
}

// Stats returns a snapshot of per-feed counters.
func (s *Scheduler) Stats() map[string]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Stats, len(s.stats))
	for name, st := range s.stats {
		out[name] = *st
	}
	return out
}

// FeedNames lists registered feeds, sorted.
func (s *Scheduler) FeedNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.feeds))
	for _, f := range s.feeds {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}

func (s *Scheduler) pollLoop(ctx context.Context, f Feed) {
	consecutiveErrors := 0
	if !s.pollFeed(ctx, f) {
		consecutiveErrors = 1
	}
	for {
		// Consecutive failures back the feed off exponentially (capped at
		// 8× the interval) so a dead source does not burn its poll budget.
		wait := f.Interval
		if consecutiveErrors > 0 {
			shift := consecutiveErrors
			if shift > 3 {
				shift = 3
			}
			wait = f.Interval << shift
		}
		select {
		case <-ctx.Done():
			return
		case <-s.clk.After(wait):
			if s.pollFeed(ctx, f) {
				consecutiveErrors = 0
			} else {
				consecutiveErrors++
			}
		}
	}
}

// pollFeed fetches and processes one feed once; it reports success (a
// not-modified response counts as success).
func (s *Scheduler) pollFeed(ctx context.Context, f Feed) bool {
	var fetchStart time.Time
	if s.metrics != nil {
		fetchStart = time.Now()
	}
	data, notModified, err := f.Fetcher.Fetch(ctx)
	if s.metrics != nil {
		s.metrics.fetchDur.With(f.Name).Observe(time.Since(fetchStart).Seconds())
		s.metrics.fetches.With(f.Name).Inc()
		s.metrics.bytes.With(f.Name).Add(int64(len(data)))
	}
	s.mu.Lock()
	st := s.stats[f.Name]
	st.Fetches++
	s.mu.Unlock()

	if err != nil {
		s.bumpErrors(f.Name)
		s.logger.Warn("feed fetch failed", "feed", f.Name, "error", err)
		return false
	}
	if notModified {
		s.mu.Lock()
		st.NotModified++
		s.mu.Unlock()
		if s.metrics != nil {
			s.metrics.notModified.With(f.Name).Inc()
		}
		return true
	}
	records, err := f.Parser.Parse(data)
	if err != nil {
		s.bumpErrors(f.Name)
		s.logger.Warn("feed parse failed", "feed", f.Name, "error", err)
		return false
	}
	now := s.clk.Now()
	for _, rec := range records {
		category := f.Category
		if rec.Category != "" {
			category = rec.Category
		}
		event, err := normalize.New(rec.Value, category, f.Name, normalize.SourceOSINT, now)
		if err != nil {
			s.mu.Lock()
			st.Malformed++
			s.mu.Unlock()
			if s.metrics != nil {
				s.metrics.malformed.With(f.Name).Inc()
			}
			continue
		}
		if len(rec.Context) > 0 {
			event.Context = make(map[string]string, len(rec.Context))
			for k, v := range rec.Context {
				event.Context[k] = v
			}
		}
		s.mu.Lock()
		st.Records++
		s.mu.Unlock()
		if s.metrics != nil {
			s.metrics.records.With(f.Name).Inc()
		}
		s.sink(event)
	}
	return true
}

func (s *Scheduler) bumpErrors(name string) {
	s.mu.Lock()
	s.stats[name].Errors++
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.errors.With(name).Inc()
	}
}
