package feed

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/stixpattern"
	"github.com/caisplatform/caisp/internal/taxii"
)

// TAXIIFetcher polls a TAXII 2.1 collection and emits the objects it has
// not delivered before as a STIX bundle document — organizations consume
// each other's shared intelligence exactly this way (§II-A pairs STIX with
// TAXII for automated sharing). Pair it with STIXBundleParser.
type TAXIIFetcher struct {
	// Client talks to the TAXII server.
	Client *taxii.Client
	// APIRoot and CollectionID select the collection.
	APIRoot      string
	CollectionID string

	mu   sync.Mutex
	seen map[string]bool
}

// Fetch implements Fetcher: it returns a bundle of not-yet-delivered
// objects, or notModified when the collection holds nothing new.
func (f *TAXIIFetcher) Fetch(_ context.Context) ([]byte, bool, error) {
	if f.Client == nil {
		return nil, false, fmt.Errorf("feed: taxii fetcher has no client")
	}
	objs, err := f.Client.AllObjects(f.APIRoot, f.CollectionID, timeZero)
	if err != nil {
		return nil, false, err
	}
	f.mu.Lock()
	if f.seen == nil {
		f.seen = make(map[string]bool)
	}
	var fresh []stix.Object
	for _, o := range objs {
		id := o.GetCommon().ID
		if f.seen[id] {
			continue
		}
		f.seen[id] = true
		fresh = append(fresh, o)
	}
	f.mu.Unlock()
	if len(fresh) == 0 {
		return nil, true, nil
	}
	bundle := stix.NewBundle(fresh...)
	data, err := json.Marshal(bundle)
	if err != nil {
		return nil, false, fmt.Errorf("feed: encode taxii bundle: %w", err)
	}
	return data, false, nil
}

// STIXBundleParser extracts records from a STIX 2.0 bundle: vulnerability
// SDOs yield their CVE name with description/CVSS context, and indicator
// SDOs yield every equality-compared value of their pattern.
type STIXBundleParser struct{}

// Parse implements Parser.
func (STIXBundleParser) Parse(data []byte) ([]Record, error) {
	bundle, err := stix.ParseBundle(data)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, obj := range bundle.Objects {
		switch o := obj.(type) {
		case *stix.Vulnerability:
			rec := Record{Value: o.Name, Context: map[string]string{}}
			if o.Description != "" {
				rec.Context["description"] = o.Description
			}
			if vec, ok := o.ExtraString("x_caisp_cvss_vector"); ok {
				rec.Context["cvss-vector"] = vec
			}
			if osName, ok := o.ExtraString("x_caisp_os"); ok {
				rec.Context["os"] = osName
			}
			if products, ok := o.ExtraString("x_caisp_products"); ok {
				rec.Context["products"] = products
			}
			if refs := referenceURLs(o.ExternalReferences); refs != "" {
				rec.Context["references"] = refs
			}
			out = append(out, rec)
		case *stix.Indicator:
			for _, value := range equalityValues(o.Pattern) {
				rec := Record{Value: value}
				if o.Description != "" {
					rec.Context = map[string]string{"description": o.Description}
				}
				out = append(out, rec)
			}
		}
	}
	return out, nil
}

// equalityValues collects the literal values of every `path = 'value'`
// comparison in a STIX pattern.
func equalityValues(pattern string) []string {
	p, err := stixpattern.Parse(pattern)
	if err != nil {
		return nil
	}
	var out []string
	var walkObs func(stixpattern.ObservationExpr)
	var walkCmp func(stixpattern.CompareExpr)
	walkCmp = func(e stixpattern.CompareExpr) {
		switch c := e.(type) {
		case stixpattern.BoolCombine:
			walkCmp(c.Left)
			walkCmp(c.Right)
		case stixpattern.Comparison:
			if c.Op == stixpattern.OpEq && !c.Negated && len(c.Values) == 1 &&
				c.Values[0].Kind == stixpattern.LitString {
				out = append(out, c.Values[0].Str)
			}
		}
	}
	walkObs = func(e stixpattern.ObservationExpr) {
		switch o := e.(type) {
		case stixpattern.ObsTest:
			walkCmp(o.Expr)
		case stixpattern.ObsCombine:
			walkObs(o.Left)
			walkObs(o.Right)
		case stixpattern.ObsQualified:
			walkObs(o.Expr)
		}
	}
	walkObs(p.Root)
	return out
}

func referenceURLs(refs []stix.ExternalReference) string {
	var urls []string
	for _, r := range refs {
		if r.URL != "" {
			urls = append(urls, r.URL)
		}
	}
	return strings.Join(urls, ",")
}

// timeZero is the zero instant used for unfiltered TAXII polls; the
// fetcher's own seen-set provides the incremental semantics.
var timeZero = time.Time{}
