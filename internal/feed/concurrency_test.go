package feed

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/normalize"
)

// gateFetcher blocks every Fetch until released, counting how many fetches
// are in flight at once.
type gateFetcher struct {
	data      []byte
	inflight  atomic.Int32
	maxSeen   atomic.Int32
	holdUntil chan struct{}
}

func (f *gateFetcher) Fetch(ctx context.Context) ([]byte, bool, error) {
	cur := f.inflight.Add(1)
	defer f.inflight.Add(-1)
	for {
		max := f.maxSeen.Load()
		if cur <= max || f.maxSeen.CompareAndSwap(max, cur) {
			break
		}
	}
	if f.holdUntil != nil {
		select {
		case <-f.holdUntil:
		case <-ctx.Done():
		}
	}
	return f.data, false, nil
}

func TestPollOnceRunsFeedsInParallel(t *testing.T) {
	const feeds = 4
	release := make(chan struct{})
	gate := &gateFetcher{data: []byte("evil.example\n"), holdUntil: release}
	var events sync.Map
	sink := func(e normalize.Event) { events.Store(e.Source+e.Value, true) }
	s := NewScheduler(sink, WithConcurrency(feeds))
	for i := 0; i < feeds; i++ {
		err := s.Add(Feed{
			Name: fmt.Sprintf("feed-%d", i), Category: normalize.CategoryMalwareDomain,
			Fetcher: gate, Parser: PlaintextParser{}, Interval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.PollOnce(context.Background())
	}()
	// All four fetches must be in flight simultaneously before release.
	deadline := time.Now().Add(5 * time.Second)
	for gate.inflight.Load() != feeds {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want %d (PollOnce not parallel)", gate.inflight.Load(), feeds)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	if got := gate.maxSeen.Load(); got != feeds {
		t.Fatalf("max concurrent fetches = %d, want %d", got, feeds)
	}
	stats := s.Stats()
	for i := 0; i < feeds; i++ {
		st := stats[fmt.Sprintf("feed-%d", i)]
		if st.Fetches != 1 || st.Records != 1 || st.Errors != 0 {
			t.Fatalf("feed-%d stats = %+v", i, st)
		}
	}
}

func TestPollOnceConcurrencyBound(t *testing.T) {
	const feeds = 8
	release := make(chan struct{})
	gate := &gateFetcher{data: []byte("a.example\n"), holdUntil: release}
	s := NewScheduler(func(normalize.Event) {}, WithConcurrency(2))
	for i := 0; i < feeds; i++ {
		if err := s.Add(Feed{
			Name: fmt.Sprintf("feed-%d", i), Category: normalize.CategoryMalwareDomain,
			Fetcher: gate, Parser: PlaintextParser{}, Interval: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.PollOnce(context.Background())
	}()
	deadline := time.Now().Add(2 * time.Second)
	for gate.inflight.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want 2", gate.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give excess workers a chance to (wrongly) start
	if got := gate.maxSeen.Load(); got > 2 {
		t.Fatalf("concurrency bound exceeded: %d fetches in flight", got)
	}
	close(release)
	<-done
	if got := gate.maxSeen.Load(); got > 2 {
		t.Fatalf("concurrency bound exceeded after release: %d", got)
	}
}

func TestPollOnceSerialWhenConcurrencyOne(t *testing.T) {
	gate := &gateFetcher{data: []byte("a.example\n")}
	s := NewScheduler(func(normalize.Event) {}, WithConcurrency(1))
	for i := 0; i < 4; i++ {
		if err := s.Add(Feed{
			Name: fmt.Sprintf("feed-%d", i), Category: normalize.CategoryMalwareDomain,
			Fetcher: gate, Parser: PlaintextParser{}, Interval: time.Hour,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.PollOnce(context.Background())
	if got := gate.maxSeen.Load(); got != 1 {
		t.Fatalf("serial poll overlapped: max inflight = %d", got)
	}
}
