package feed

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Fetcher retrieves one feed document.
type Fetcher interface {
	// Fetch returns the document, or notModified=true when the source is
	// unchanged since the previous fetch.
	Fetch(ctx context.Context) (data []byte, notModified bool, err error)
}

// HTTPFetcher retrieves a feed over HTTP with conditional requests: it
// remembers ETag and Last-Modified validators and sends If-None-Match /
// If-Modified-Since on subsequent fetches.
type HTTPFetcher struct {
	// URL is the feed document location.
	URL string
	// Client is the HTTP client; http.DefaultClient if nil.
	Client *http.Client
	// MaxBytes caps the response size (16 MiB if zero).
	MaxBytes int64

	mu           sync.Mutex
	etag         string
	lastModified string
}

// Fetch implements Fetcher.
func (f *HTTPFetcher) Fetch(ctx context.Context) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.URL, nil)
	if err != nil {
		return nil, false, fmt.Errorf("feed: build request: %w", err)
	}
	f.mu.Lock()
	if f.etag != "" {
		req.Header.Set("If-None-Match", f.etag)
	}
	if f.lastModified != "" {
		req.Header.Set("If-Modified-Since", f.lastModified)
	}
	f.mu.Unlock()

	client := f.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("feed: fetch %s: %w", f.URL, err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusNotModified:
		return nil, true, nil
	case resp.StatusCode != http.StatusOK:
		return nil, false, fmt.Errorf("feed: fetch %s: status %s", f.URL, resp.Status)
	}
	limit := f.MaxBytes
	if limit <= 0 {
		limit = 16 << 20
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, false, fmt.Errorf("feed: read %s: %w", f.URL, err)
	}
	if int64(len(data)) > limit {
		return nil, false, fmt.Errorf("feed: %s exceeds %d bytes", f.URL, limit)
	}
	f.mu.Lock()
	f.etag = resp.Header.Get("ETag")
	f.lastModified = resp.Header.Get("Last-Modified")
	f.mu.Unlock()
	return data, false, nil
}

// FileFetcher reads a feed document from disk, reporting notModified when
// the file's mtime has not advanced since the previous fetch.
type FileFetcher struct {
	// Path is the feed file location.
	Path string

	mu      sync.Mutex
	lastMod time.Time
}

// Fetch implements Fetcher.
func (f *FileFetcher) Fetch(_ context.Context) ([]byte, bool, error) {
	info, err := os.Stat(f.Path)
	if err != nil {
		return nil, false, fmt.Errorf("feed: stat %s: %w", f.Path, err)
	}
	f.mu.Lock()
	unchanged := !f.lastMod.IsZero() && !info.ModTime().After(f.lastMod)
	f.mu.Unlock()
	if unchanged {
		return nil, true, nil
	}
	data, err := os.ReadFile(f.Path)
	if err != nil {
		return nil, false, fmt.Errorf("feed: read %s: %w", f.Path, err)
	}
	f.mu.Lock()
	f.lastMod = info.ModTime()
	f.mu.Unlock()
	return data, false, nil
}

// StaticFetcher serves a fixed document once and notModified afterwards;
// used in tests and examples.
type StaticFetcher struct {
	// Data is the document to serve.
	Data []byte

	mu      sync.Mutex
	fetched bool
}

// Fetch implements Fetcher.
func (f *StaticFetcher) Fetch(_ context.Context) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fetched {
		return nil, true, nil
	}
	f.fetched = true
	return f.Data, false, nil
}
