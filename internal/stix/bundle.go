package stix

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Bundle is a STIX 2.0 bundle: a transport container for a set of objects.
type Bundle struct {
	Type        string   `json:"type"`
	ID          string   `json:"id"`
	SpecVersion string   `json:"spec_version"`
	Objects     []Object `json:"-"`
}

// NewBundle creates a bundle wrapping objs, stamped with a fresh id.
func NewBundle(objs ...Object) *Bundle {
	return &Bundle{
		Type:        TypeBundle,
		ID:          NewID(TypeBundle),
		SpecVersion: "2.0",
		Objects:     objs,
	}
}

// Add appends objects to the bundle.
func (b *Bundle) Add(objs ...Object) { b.Objects = append(b.Objects, objs...) }

// ByType returns the bundle's objects of the given STIX type.
func (b *Bundle) ByType(typ string) []Object {
	var out []Object
	for _, o := range b.Objects {
		if o.GetCommon().Type == typ {
			out = append(out, o)
		}
	}
	return out
}

// Find returns the object with the given id, or nil.
func (b *Bundle) Find(id string) Object {
	for _, o := range b.Objects {
		if o.GetCommon().ID == id {
			return o
		}
	}
	return nil
}

// MarshalJSON encodes the bundle with each object serialized through
// Marshal so custom properties survive.
func (b *Bundle) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(`{"id":`)
	id, err := json.Marshal(b.ID)
	if err != nil {
		return nil, err
	}
	buf.Write(id)
	buf.WriteString(`,"objects":[`)
	for i, o := range b.Objects {
		if i > 0 {
			buf.WriteByte(',')
		}
		ob, err := Marshal(o)
		if err != nil {
			return nil, fmt.Errorf("stix: bundle object %d: %w", i, err)
		}
		buf.Write(ob)
	}
	buf.WriteString(`],"spec_version":`)
	sv, err := json.Marshal(b.SpecVersion)
	if err != nil {
		return nil, err
	}
	buf.Write(sv)
	buf.WriteString(`,"type":"bundle"}`)
	return buf.Bytes(), nil
}

// UnmarshalJSON decodes a bundle, dispatching each object by type.
// Objects of unknown type are skipped (forward compatibility), matching
// STIX's consumer guidance.
func (b *Bundle) UnmarshalJSON(data []byte) error {
	var raw struct {
		Type        string            `json:"type"`
		ID          string            `json:"id"`
		SpecVersion string            `json:"spec_version"`
		Objects     []json.RawMessage `json:"objects"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("stix: decode bundle: %w", err)
	}
	if raw.Type != TypeBundle {
		return fmt.Errorf("stix: not a bundle (type %q)", raw.Type)
	}
	b.Type = raw.Type
	b.ID = raw.ID
	b.SpecVersion = raw.SpecVersion
	b.Objects = b.Objects[:0]
	for i, ro := range raw.Objects {
		obj, err := Unmarshal(ro)
		if err != nil {
			var head struct {
				Type string `json:"type"`
			}
			if json.Unmarshal(ro, &head) == nil && head.Type != "" && New(head.Type) == nil {
				continue // unknown object type: skip, do not fail the bundle
			}
			return fmt.Errorf("stix: bundle object %d: %w", i, err)
		}
		b.Objects = append(b.Objects, obj)
	}
	return nil
}

// ParseBundle decodes a STIX 2.0 bundle from JSON.
func ParseBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}
