package stix

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Marshal encodes a STIX object to JSON, merging any custom properties held
// in Common.Extra. Declared struct fields take precedence over Extra keys on
// collision. Output keys are sorted for determinism.
func Marshal(obj Object) ([]byte, error) {
	base, err := structToMap(obj)
	if err != nil {
		return nil, err
	}
	extra := obj.GetCommon().Extra
	for k, v := range extra {
		if _, exists := base[k]; !exists {
			base[k] = v
		}
	}
	return encodeSorted(base)
}

// Unmarshal decodes a single STIX object, dispatching on its "type"
// property. Unrecognized properties are preserved in Common.Extra.
func Unmarshal(data []byte) (Object, error) {
	var head struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("stix: decode object header: %w", err)
	}
	obj := New(head.Type)
	if obj == nil {
		return nil, fmt.Errorf("stix: unknown object type %q", head.Type)
	}
	if err := decodeInto(data, obj); err != nil {
		return nil, err
	}
	return obj, nil
}

// decodeInto fills obj from data and collects unknown keys into Extra.
func decodeInto(data []byte, obj Object) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(obj); err != nil {
		return fmt.Errorf("stix: decode %T: %w", obj, err)
	}
	// Determine which keys the struct itself accounts for by re-encoding
	// the now-populated struct; everything else is a custom property.
	known, err := structToMap(obj)
	if err != nil {
		return err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("stix: decode raw object: %w", err)
	}
	var extra map[string]any
	for k, v := range raw {
		if _, ok := known[k]; ok {
			continue
		}
		if isDeclaredField(k) {
			// A declared field that encoded as empty (omitempty) — keep the
			// struct's view, do not duplicate it as a custom property.
			continue
		}
		if extra == nil {
			extra = make(map[string]any)
		}
		extra[k] = v
	}
	obj.GetCommon().Extra = extra
	return nil
}

// declaredFields is the union of all JSON property names declared by any
// object struct in this package. Used to avoid misclassifying an omitted
// (zero-valued) declared field as a custom property during decode.
var declaredFields = map[string]bool{
	"type": true, "id": true, "created_by_ref": true, "created": true,
	"modified": true, "revoked": true, "labels": true,
	"external_references": true, "object_marking_refs": true,
	"name": true, "description": true, "kill_chain_phases": true,
	"aliases": true, "first_seen": true, "last_seen": true,
	"objective": true, "identity_class": true, "sectors": true,
	"contact_information": true, "pattern": true, "valid_from": true,
	"valid_until": true, "goals": true, "resource_level": true,
	"primary_motivation": true, "secondary_motivations": true,
	"first_observed": true, "last_observed": true, "number_observed": true,
	"objects": true, "published": true, "object_refs": true, "roles": true,
	"sophistication": true, "tool_version": true, "relationship_type": true,
	"source_ref": true, "target_ref": true, "sighting_of_ref": true,
	"observed_data_refs": true, "where_sighted_refs": true, "count": true,
}

func isDeclaredField(key string) bool { return declaredFields[key] }

func structToMap(obj Object) (map[string]any, error) {
	b, err := json.Marshal(obj)
	if err != nil {
		return nil, fmt.Errorf("stix: encode %T: %w", obj, err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("stix: re-decode %T: %w", obj, err)
	}
	// Timestamps that are zero marshal as null; strip them so optional
	// timestamp fields behave like omitempty.
	for k, v := range m {
		if v == nil {
			delete(m, k)
		}
	}
	return m, nil
}

// encodeSorted writes a map as JSON with lexically sorted keys.
func encodeSorted(m map[string]any) ([]byte, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}
