package stix

// The twelve STIX 2.0 domain objects plus the two relationship objects.
// Every struct embeds Common; type-specific properties follow the
// specification's property tables. Optional vocabulary fields are plain
// strings — validation checks them against open vocabularies where the
// specification defines one.

// AttackPattern describes ways threat actors attempt to compromise targets
// (tactics, techniques and procedures).
type AttackPattern struct {
	Common

	Name            string           `json:"name"`
	Description     string           `json:"description,omitempty"`
	KillChainPhases []KillChainPhase `json:"kill_chain_phases,omitempty"`
}

// Campaign is a grouping of adversarial behaviour over time against specific
// targets.
type Campaign struct {
	Common

	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Aliases     []string  `json:"aliases,omitempty"`
	FirstSeen   Timestamp `json:"first_seen,omitempty"`
	LastSeen    Timestamp `json:"last_seen,omitempty"`
	Objective   string    `json:"objective,omitempty"`
}

// CourseOfAction is an action taken to prevent or respond to an attack.
type CourseOfAction struct {
	Common

	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// Identity represents individuals, organizations or groups, or classes of
// them, that may be involved in a security event.
type Identity struct {
	Common

	Name               string   `json:"name"`
	Description        string   `json:"description,omitempty"`
	IdentityClass      string   `json:"identity_class"`
	Sectors            []string `json:"sectors,omitempty"`
	ContactInformation string   `json:"contact_information,omitempty"`
}

// Indicator contains a pattern used to detect suspicious or malicious cyber
// activity.
type Indicator struct {
	Common

	Name            string           `json:"name,omitempty"`
	Description     string           `json:"description,omitempty"`
	Pattern         string           `json:"pattern"`
	ValidFrom       Timestamp        `json:"valid_from"`
	ValidUntil      Timestamp        `json:"valid_until,omitempty"`
	KillChainPhases []KillChainPhase `json:"kill_chain_phases,omitempty"`
}

// IntrusionSet is a grouped set of adversarial behaviour and resources with
// common properties believed to be orchestrated by a single organization.
type IntrusionSet struct {
	Common

	Name                 string    `json:"name"`
	Description          string    `json:"description,omitempty"`
	Aliases              []string  `json:"aliases,omitempty"`
	FirstSeen            Timestamp `json:"first_seen,omitempty"`
	LastSeen             Timestamp `json:"last_seen,omitempty"`
	Goals                []string  `json:"goals,omitempty"`
	ResourceLevel        string    `json:"resource_level,omitempty"`
	PrimaryMotivation    string    `json:"primary_motivation,omitempty"`
	SecondaryMotivations []string  `json:"secondary_motivations,omitempty"`
}

// Malware is malicious code or software used to compromise the
// confidentiality, integrity or availability of a victim's data or system.
type Malware struct {
	Common

	Name            string           `json:"name"`
	Description     string           `json:"description,omitempty"`
	KillChainPhases []KillChainPhase `json:"kill_chain_phases,omitempty"`
}

// ObservedData conveys raw information observed on systems and networks.
type ObservedData struct {
	Common

	FirstObserved  Timestamp      `json:"first_observed"`
	LastObserved   Timestamp      `json:"last_observed"`
	NumberObserved int            `json:"number_observed"`
	Objects        map[string]any `json:"objects"`
}

// Report is a collection of threat intelligence focused on one or more
// topics.
type Report struct {
	Common

	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Published   Timestamp `json:"published"`
	ObjectRefs  []string  `json:"object_refs"`
}

// ThreatActor is an individual, group or organization believed to operate
// with malicious intent.
type ThreatActor struct {
	Common

	Name                 string   `json:"name"`
	Description          string   `json:"description,omitempty"`
	Aliases              []string `json:"aliases,omitempty"`
	Roles                []string `json:"roles,omitempty"`
	Goals                []string `json:"goals,omitempty"`
	Sophistication       string   `json:"sophistication,omitempty"`
	ResourceLevel        string   `json:"resource_level,omitempty"`
	PrimaryMotivation    string   `json:"primary_motivation,omitempty"`
	SecondaryMotivations []string `json:"secondary_motivations,omitempty"`
}

// Tool is legitimate software that can be used by threat actors to perform
// attacks.
type Tool struct {
	Common

	Name            string           `json:"name"`
	Description     string           `json:"description,omitempty"`
	ToolVersion     string           `json:"tool_version,omitempty"`
	KillChainPhases []KillChainPhase `json:"kill_chain_phases,omitempty"`
}

// Vulnerability is a mistake in software that can be directly used by a
// hacker to gain access to a system or network. This is the SDO exercised by
// the paper's §IV remote-code-execution use case.
type Vulnerability struct {
	Common

	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
}

// Relationship links two STIX objects and describes how they are related.
type Relationship struct {
	Common

	RelationshipType string `json:"relationship_type"`
	Description      string `json:"description,omitempty"`
	SourceRef        string `json:"source_ref"`
	TargetRef        string `json:"target_ref"`
}

// Sighting denotes that an SDO was seen (e.g. an indicator matched).
type Sighting struct {
	Common

	FirstSeen        Timestamp `json:"first_seen,omitempty"`
	LastSeen         Timestamp `json:"last_seen,omitempty"`
	Count            int       `json:"count,omitempty"`
	SightingOfRef    string    `json:"sighting_of_ref"`
	ObservedDataRefs []string  `json:"observed_data_refs,omitempty"`
	WhereSightedRefs []string  `json:"where_sighted_refs,omitempty"`
}

// Compile-time interface conformance for every object type.
var (
	_ Object = (*AttackPattern)(nil)
	_ Object = (*Campaign)(nil)
	_ Object = (*CourseOfAction)(nil)
	_ Object = (*Identity)(nil)
	_ Object = (*Indicator)(nil)
	_ Object = (*IntrusionSet)(nil)
	_ Object = (*Malware)(nil)
	_ Object = (*ObservedData)(nil)
	_ Object = (*Report)(nil)
	_ Object = (*ThreatActor)(nil)
	_ Object = (*Tool)(nil)
	_ Object = (*Vulnerability)(nil)
	_ Object = (*Relationship)(nil)
	_ Object = (*Sighting)(nil)
)

// New allocates an empty object of the given STIX type, for decoding.
// It returns nil for unknown types.
func New(typ string) Object {
	switch typ {
	case TypeAttackPattern:
		return &AttackPattern{}
	case TypeCampaign:
		return &Campaign{}
	case TypeCourseOfAction:
		return &CourseOfAction{}
	case TypeIdentity:
		return &Identity{}
	case TypeIndicator:
		return &Indicator{}
	case TypeIntrusionSet:
		return &IntrusionSet{}
	case TypeMalware:
		return &Malware{}
	case TypeObservedData:
		return &ObservedData{}
	case TypeReport:
		return &Report{}
	case TypeThreatActor:
		return &ThreatActor{}
	case TypeTool:
		return &Tool{}
	case TypeVulnerability:
		return &Vulnerability{}
	case TypeRelationship:
		return &Relationship{}
	case TypeSighting:
		return &Sighting{}
	default:
		return nil
	}
}
