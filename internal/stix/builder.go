package stix

import (
	"time"
)

// NewVulnerability builds a minimally valid vulnerability SDO stamped at now.
func NewVulnerability(name, description string, now time.Time) *Vulnerability {
	return &Vulnerability{
		Common:      newCommon(TypeVulnerability, now),
		Name:        name,
		Description: description,
	}
}

// NewIndicator builds a minimally valid indicator SDO stamped at now.
func NewIndicator(pattern string, labels []string, now time.Time) *Indicator {
	c := newCommon(TypeIndicator, now)
	c.Labels = labels
	return &Indicator{
		Common:    c,
		Pattern:   pattern,
		ValidFrom: TS(now),
	}
}

// NewMalware builds a minimally valid malware SDO stamped at now.
func NewMalware(name string, labels []string, now time.Time) *Malware {
	c := newCommon(TypeMalware, now)
	c.Labels = labels
	return &Malware{Common: c, Name: name}
}

// NewAttackPattern builds a minimally valid attack-pattern SDO stamped at now.
func NewAttackPattern(name string, now time.Time) *AttackPattern {
	return &AttackPattern{Common: newCommon(TypeAttackPattern, now), Name: name}
}

// NewIdentity builds a minimally valid identity SDO stamped at now.
func NewIdentity(name, class string, now time.Time) *Identity {
	return &Identity{
		Common:        newCommon(TypeIdentity, now),
		Name:          name,
		IdentityClass: class,
	}
}

// NewTool builds a minimally valid tool SDO stamped at now.
func NewTool(name string, labels []string, now time.Time) *Tool {
	c := newCommon(TypeTool, now)
	c.Labels = labels
	return &Tool{Common: c, Name: name}
}

// NewRelationship links source to target with the given relationship type.
func NewRelationship(relType, sourceRef, targetRef string, now time.Time) *Relationship {
	return &Relationship{
		Common:           newCommon(TypeRelationship, now),
		RelationshipType: relType,
		SourceRef:        sourceRef,
		TargetRef:        targetRef,
	}
}

// NewSighting records that the referenced SDO was seen count times.
func NewSighting(sightingOfRef string, count int, now time.Time) *Sighting {
	return &Sighting{
		Common:        newCommon(TypeSighting, now),
		SightingOfRef: sightingOfRef,
		Count:         count,
	}
}

func newCommon(typ string, now time.Time) Common {
	return Common{
		Type:     typ,
		ID:       NewID(typ),
		Created:  TS(now),
		Modified: TS(now),
	}
}
