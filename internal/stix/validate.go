package stix

import (
	"errors"
	"fmt"
	"strings"
)

// ValidationError aggregates the problems found in one object.
type ValidationError struct {
	ID       string
	Problems []string
}

// Error lists every problem on one line.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("stix: object %s invalid: %s", e.ID, strings.Join(e.Problems, "; "))
}

// identityClasses is the STIX 2.0 identity-class open vocabulary.
var identityClasses = map[string]bool{
	"individual": true, "group": true, "organization": true,
	"class": true, "unknown": true,
}

// Validate checks an object's required properties, identifier shape and
// basic vocabulary conformance. It returns nil or a *ValidationError.
func Validate(obj Object) error {
	c := obj.GetCommon()
	var problems []string
	add := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	if c.Type == "" {
		add("missing type")
	}
	if !ValidID(c.ID) {
		add("malformed id %q", c.ID)
	} else if IDType(c.ID) != c.Type {
		add("id type %q does not match object type %q", IDType(c.ID), c.Type)
	}
	if c.Created.IsZero() {
		add("missing created timestamp")
	}
	if c.Modified.IsZero() {
		add("missing modified timestamp")
	}
	if !c.Created.IsZero() && !c.Modified.IsZero() && c.Modified.Before(c.Created.Time) {
		add("modified (%s) precedes created (%s)", c.Modified.Format("2006-01-02"), c.Created.Format("2006-01-02"))
	}
	for _, ref := range c.ExternalReferences {
		if ref.SourceName == "" {
			add("external reference missing source_name")
		}
	}

	switch o := obj.(type) {
	case *AttackPattern:
		requireName(o.Name, add)
	case *Campaign:
		requireName(o.Name, add)
	case *CourseOfAction:
		requireName(o.Name, add)
	case *Identity:
		requireName(o.Name, add)
		if o.IdentityClass == "" {
			add("identity missing identity_class")
		} else if !identityClasses[o.IdentityClass] {
			add("identity_class %q not in open vocabulary", o.IdentityClass)
		}
	case *Indicator:
		if o.Pattern == "" {
			add("indicator missing pattern")
		}
		if o.ValidFrom.IsZero() {
			add("indicator missing valid_from")
		}
		if len(o.Labels) == 0 {
			add("indicator missing labels")
		}
		if !o.ValidUntil.IsZero() && !o.ValidFrom.IsZero() && !o.ValidUntil.After(o.ValidFrom.Time) {
			add("valid_until must be after valid_from")
		}
	case *IntrusionSet:
		requireName(o.Name, add)
	case *Malware:
		requireName(o.Name, add)
		if len(o.Labels) == 0 {
			add("malware missing labels")
		}
	case *ObservedData:
		if o.NumberObserved < 1 {
			add("observed-data number_observed must be ≥ 1")
		}
		if o.FirstObserved.IsZero() || o.LastObserved.IsZero() {
			add("observed-data missing observation window")
		}
		if len(o.Objects) == 0 {
			add("observed-data missing objects")
		}
	case *Report:
		requireName(o.Name, add)
		if o.Published.IsZero() {
			add("report missing published")
		}
		if len(o.ObjectRefs) == 0 {
			add("report missing object_refs")
		}
	case *ThreatActor:
		requireName(o.Name, add)
		if len(o.Labels) == 0 {
			add("threat-actor missing labels")
		}
	case *Tool:
		requireName(o.Name, add)
		if len(o.Labels) == 0 {
			add("tool missing labels")
		}
	case *Vulnerability:
		requireName(o.Name, add)
	case *Relationship:
		if o.RelationshipType == "" {
			add("relationship missing relationship_type")
		}
		if !ValidID(o.SourceRef) {
			add("relationship malformed source_ref %q", o.SourceRef)
		}
		if !ValidID(o.TargetRef) {
			add("relationship malformed target_ref %q", o.TargetRef)
		}
	case *Sighting:
		if !ValidID(o.SightingOfRef) {
			add("sighting malformed sighting_of_ref %q", o.SightingOfRef)
		}
		if o.Count < 0 {
			add("sighting count must be non-negative")
		}
	}

	if len(problems) == 0 {
		return nil
	}
	return &ValidationError{ID: c.ID, Problems: problems}
}

// ValidateBundle validates every object in the bundle and the bundle header
// itself, returning a joined error or nil.
func ValidateBundle(b *Bundle) error {
	var errs []error
	if b.Type != TypeBundle {
		errs = append(errs, fmt.Errorf("stix: bundle has type %q", b.Type))
	}
	if !ValidID(b.ID) {
		errs = append(errs, fmt.Errorf("stix: bundle has malformed id %q", b.ID))
	}
	seen := make(map[string]bool, len(b.Objects))
	for _, o := range b.Objects {
		if err := Validate(o); err != nil {
			errs = append(errs, err)
		}
		id := o.GetCommon().ID
		if seen[id] {
			errs = append(errs, fmt.Errorf("stix: duplicate object id %s in bundle", id))
		}
		seen[id] = true
	}
	return errors.Join(errs...)
}

func requireName(name string, add func(string, ...any)) {
	if name == "" {
		add("missing name")
	}
}
