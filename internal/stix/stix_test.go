package stix

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var testTime = time.Date(2017, 9, 13, 10, 30, 0, 0, time.UTC)

func TestNewIDShape(t *testing.T) {
	id := NewID(TypeIndicator)
	typ, _, err := ParseID(id)
	if err != nil {
		t.Fatalf("ParseID(%q): %v", id, err)
	}
	if typ != TypeIndicator {
		t.Fatalf("type = %q, want indicator", typ)
	}
	if id == NewID(TypeIndicator) {
		t.Fatal("two NewID calls returned the same id")
	}
}

func TestDeterministicID(t *testing.T) {
	a := DeterministicID(TypeVulnerability, "CVE-2017-9805")
	b := DeterministicID(TypeVulnerability, "CVE-2017-9805")
	if a != b {
		t.Fatalf("deterministic ids differ: %s vs %s", a, b)
	}
	if !ValidID(a) {
		t.Fatalf("deterministic id %q is not valid", a)
	}
	c := DeterministicID(TypeVulnerability, "CVE-2017-9804")
	if a == c {
		t.Fatal("distinct names produced the same deterministic id")
	}
	d := DeterministicID(TypeIndicator, "CVE-2017-9805")
	if a == d {
		t.Fatal("distinct types produced the same deterministic id")
	}
}

func TestParseIDErrors(t *testing.T) {
	tests := []string{
		"",
		"indicator",
		"indicator--",
		"indicator--not-a-uuid",
		"--6ba7b810-9dad-11d1-80b4-00c04fd430c8",
	}
	for _, give := range tests {
		if _, _, err := ParseID(give); err == nil {
			t.Errorf("ParseID(%q) succeeded, want error", give)
		}
	}
}

func TestTimestampFormat(t *testing.T) {
	ts := TS(time.Date(2017, 9, 13, 7, 5, 4, 123456789, time.UTC))
	b, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `"2017-09-13T07:05:04.123Z"`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var back Timestamp
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ts.Truncate(time.Millisecond)) {
		t.Fatalf("round trip = %v, want %v", back, ts)
	}
}

func TestTimestampUnmarshalVariants(t *testing.T) {
	tests := []struct {
		give    string
		wantErr bool
	}{
		{give: `"2017-09-13T07:05:04Z"`},
		{give: `"2017-09-13T07:05:04.123456Z"`},
		{give: `"2017-09-13T09:05:04+02:00"`},
		{give: `null`},
		{give: `"yesterday"`, wantErr: true},
	}
	for _, tt := range tests {
		var ts Timestamp
		err := json.Unmarshal([]byte(tt.give), &ts)
		if (err != nil) != tt.wantErr {
			t.Errorf("Unmarshal(%s) error = %v, wantErr %v", tt.give, err, tt.wantErr)
		}
	}
}

func TestMarshalRoundTripPreservesCustomProperties(t *testing.T) {
	v := NewVulnerability("CVE-2017-9805", "Apache Struts RCE", testTime)
	v.ExternalReferences = []ExternalReference{
		{SourceName: "cve", ExternalID: "CVE-2017-9805"},
		{SourceName: "capec", ExternalID: "CAPEC-248"},
	}
	v.SetExtra("x_caisp_threat_score", 2.7406)
	v.SetExtra("x_caisp_criteria", map[string]any{"relevance": "high"})

	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := obj.(*Vulnerability)
	if !ok {
		t.Fatalf("decoded %T, want *Vulnerability", obj)
	}
	if back.Name != v.Name || back.Description != v.Description {
		t.Fatalf("core fields lost: %+v", back)
	}
	if len(back.ExternalReferences) != 2 {
		t.Fatalf("external references lost: %+v", back.ExternalReferences)
	}
	score, ok := back.ExtraFloat("x_caisp_threat_score")
	if !ok || score != 2.7406 {
		t.Fatalf("custom score = %v (%v), want 2.7406", score, ok)
	}
	// Second round trip must be byte-identical (canonical sorted output).
	data2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("marshal not canonical:\n%s\n%s", data, data2)
	}
}

func TestUnmarshalAllSDOTypes(t *testing.T) {
	for _, typ := range SDOTypes {
		obj := New(typ)
		if obj == nil {
			t.Fatalf("New(%q) = nil", typ)
		}
		c := obj.GetCommon()
		c.Type = typ
		c.ID = NewID(typ)
		c.Created = TS(testTime)
		c.Modified = TS(testTime)
		data, err := Marshal(obj)
		if err != nil {
			t.Fatalf("Marshal(%s): %v", typ, err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", typ, err)
		}
		if back.GetCommon().Type != typ {
			t.Fatalf("round trip type = %q, want %q", back.GetCommon().Type, typ)
		}
	}
}

func TestUnmarshalUnknownType(t *testing.T) {
	_, err := Unmarshal([]byte(`{"type":"grouping","id":"grouping--x"}`))
	if err == nil {
		t.Fatal("Unmarshal of unknown type succeeded")
	}
}

func TestBundleRoundTrip(t *testing.T) {
	ind := NewIndicator("[domain-name:value = 'evil.example']", []string{"malicious-activity"}, testTime)
	mal := NewMalware("emotet", []string{"trojan"}, testTime)
	rel := NewRelationship("indicates", ind.ID, mal.ID, testTime)
	b := NewBundle(ind, mal, rel)

	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objects) != 3 {
		t.Fatalf("decoded %d objects, want 3", len(back.Objects))
	}
	if back.ID != b.ID || back.SpecVersion != "2.0" {
		t.Fatalf("bundle header lost: %+v", back)
	}
	if got := back.Find(mal.ID); got == nil {
		t.Fatalf("Find(%s) = nil", mal.ID)
	}
	if got := len(back.ByType(TypeIndicator)); got != 1 {
		t.Fatalf("ByType(indicator) returned %d objects, want 1", got)
	}
}

func TestBundleSkipsUnknownObjectTypes(t *testing.T) {
	raw := `{
		"type": "bundle",
		"id": "bundle--6ba7b810-9dad-11d1-80b4-00c04fd430c8",
		"spec_version": "2.0",
		"objects": [
			{"type": "grouping", "id": "grouping--6ba7b810-9dad-11d1-80b4-00c04fd430c8"},
			{"type": "vulnerability", "id": "vulnerability--6ba7b810-9dad-11d1-80b4-00c04fd430c8",
			 "created": "2017-09-13T00:00:00.000Z", "modified": "2017-09-13T00:00:00.000Z",
			 "name": "CVE-2017-9805"}
		]
	}`
	b, err := ParseBundle([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Objects) != 1 {
		t.Fatalf("decoded %d objects, want 1 (unknown type skipped)", len(b.Objects))
	}
}

func TestBundleRejectsNonBundle(t *testing.T) {
	if _, err := ParseBundle([]byte(`{"type":"report","id":"report--x"}`)); err == nil {
		t.Fatal("ParseBundle accepted a non-bundle")
	}
}

func TestValidateAcceptsBuilders(t *testing.T) {
	objs := []Object{
		NewVulnerability("CVE-2017-9805", "", testTime),
		NewIndicator("[ipv4-addr:value = '10.0.0.1']", []string{"malicious-activity"}, testTime),
		NewMalware("wannacry", []string{"ransomware"}, testTime),
		NewAttackPattern("spearphishing", testTime),
		NewIdentity("ACME SOC", "organization", testTime),
		NewTool("nmap", []string{"remote-access"}, testTime),
	}
	for _, o := range objs {
		if err := Validate(o); err != nil {
			t.Errorf("Validate(%s): %v", o.GetCommon().Type, err)
		}
	}
}

func TestValidateProblems(t *testing.T) {
	tests := []struct {
		name string
		obj  Object
		want string
	}{
		{
			name: "missing name",
			obj: &Vulnerability{Common: Common{
				Type: TypeVulnerability, ID: NewID(TypeVulnerability),
				Created: TS(testTime), Modified: TS(testTime),
			}},
			want: "missing name",
		},
		{
			name: "id type mismatch",
			obj: &Vulnerability{Common: Common{
				Type: TypeVulnerability, ID: NewID(TypeMalware),
				Created: TS(testTime), Modified: TS(testTime),
			}, Name: "x"},
			want: "does not match",
		},
		{
			name: "modified before created",
			obj: &Vulnerability{Common: Common{
				Type: TypeVulnerability, ID: NewID(TypeVulnerability),
				Created: TS(testTime), Modified: TS(testTime.Add(-time.Hour)),
			}, Name: "x"},
			want: "precedes",
		},
		{
			name: "indicator without pattern",
			obj: &Indicator{Common: Common{
				Type: TypeIndicator, ID: NewID(TypeIndicator),
				Created: TS(testTime), Modified: TS(testTime),
				Labels: []string{"malicious-activity"},
			}, ValidFrom: TS(testTime)},
			want: "missing pattern",
		},
		{
			name: "identity with bad class",
			obj: &Identity{Common: Common{
				Type: TypeIdentity, ID: NewID(TypeIdentity),
				Created: TS(testTime), Modified: TS(testTime),
			}, Name: "x", IdentityClass: "martian"},
			want: "not in open vocabulary",
		},
		{
			name: "relationship with bad refs",
			obj: &Relationship{Common: Common{
				Type: TypeRelationship, ID: NewID(TypeRelationship),
				Created: TS(testTime), Modified: TS(testTime),
			}, RelationshipType: "indicates", SourceRef: "nope", TargetRef: "nope"},
			want: "malformed source_ref",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.obj)
			if err == nil {
				t.Fatal("Validate returned nil, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestValidateBundleDuplicateIDs(t *testing.T) {
	v := NewVulnerability("CVE-2017-9805", "", testTime)
	b := NewBundle(v, v)
	err := ValidateBundle(b)
	if err == nil || !strings.Contains(err.Error(), "duplicate object id") {
		t.Fatalf("ValidateBundle error = %v, want duplicate id complaint", err)
	}
}

func TestExtraAccessors(t *testing.T) {
	var c Common
	if _, ok := c.ExtraString("missing"); ok {
		t.Fatal("ExtraString on empty Extra reported ok")
	}
	c.SetExtra("s", "hello")
	c.SetExtra("f", 1.5)
	c.SetExtra("i", 7)
	if s, ok := c.ExtraString("s"); !ok || s != "hello" {
		t.Fatalf("ExtraString = %q, %v", s, ok)
	}
	if f, ok := c.ExtraFloat("f"); !ok || f != 1.5 {
		t.Fatalf("ExtraFloat(f) = %v, %v", f, ok)
	}
	if f, ok := c.ExtraFloat("i"); !ok || f != 7 {
		t.Fatalf("ExtraFloat(i) = %v, %v", f, ok)
	}
	if _, ok := c.ExtraFloat("s"); ok {
		t.Fatal("ExtraFloat on a string reported ok")
	}
}

func TestMarshalStructFieldsWinOverExtra(t *testing.T) {
	v := NewVulnerability("real-name", "", testTime)
	v.SetExtra("name", "spoofed")
	data, err := Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["name"] != "real-name" {
		t.Fatalf("name = %v, want struct field to win", m["name"])
	}
}

func TestTLPMarkings(t *testing.T) {
	for _, level := range []string{"white", "green", "amber", "red"} {
		m := TLPMarking(level)
		if m == nil {
			t.Fatalf("TLPMarking(%q) = nil", level)
		}
		if m.DefinitionType != "tlp" || m.Definition["tlp"] != level {
			t.Fatalf("marking = %+v", m)
		}
		if !ValidID(m.ID) {
			t.Fatalf("marking id %q invalid", m.ID)
		}
	}
	if TLPMarking("chartreuse") != nil {
		t.Fatal("unknown TLP level produced a marking")
	}
	// The predefined ids are distinct.
	ids := map[string]bool{TLPWhiteID: true, TLPGreenID: true, TLPAmberID: true, TLPRedID: true}
	if len(ids) != 4 {
		t.Fatal("TLP ids collide")
	}
}

func TestValidateRemainingSDOs(t *testing.T) {
	mk := func(typ string) Common {
		return Common{
			Type: typ, ID: NewID(typ),
			Created: TS(testTime), Modified: TS(testTime),
		}
	}
	tests := []struct {
		name string
		obj  Object
		want string // "" means valid
	}{
		{name: "campaign ok", obj: &Campaign{Common: mk(TypeCampaign), Name: "c"}},
		{name: "campaign unnamed", obj: &Campaign{Common: mk(TypeCampaign)}, want: "missing name"},
		{name: "course-of-action ok", obj: &CourseOfAction{Common: mk(TypeCourseOfAction), Name: "block"}},
		{name: "intrusion-set unnamed", obj: &IntrusionSet{Common: mk(TypeIntrusionSet)}, want: "missing name"},
		{
			name: "threat-actor unlabeled",
			obj:  &ThreatActor{Common: mk(TypeThreatActor), Name: "apt"},
			want: "missing labels",
		},
		{
			name: "observed-data bad count",
			obj: &ObservedData{
				Common:        mk(TypeObservedData),
				FirstObserved: TS(testTime), LastObserved: TS(testTime),
				NumberObserved: 0,
				Objects:        map[string]any{"0": map[string]any{"type": "ipv4-addr"}},
			},
			want: "number_observed",
		},
		{
			name: "observed-data ok",
			obj: &ObservedData{
				Common:        mk(TypeObservedData),
				FirstObserved: TS(testTime), LastObserved: TS(testTime),
				NumberObserved: 1,
				Objects:        map[string]any{"0": map[string]any{"type": "ipv4-addr"}},
			},
		},
		{
			name: "report missing refs",
			obj:  &Report{Common: mk(TypeReport), Name: "r", Published: TS(testTime)},
			want: "missing object_refs",
		},
		{
			name: "sighting negative count",
			obj: &Sighting{
				Common:        mk(TypeSighting),
				SightingOfRef: NewID(TypeIndicator),
				Count:         -1,
			},
			want: "non-negative",
		},
		{
			name: "sighting ok",
			obj: &Sighting{
				Common:        mk(TypeSighting),
				SightingOfRef: NewID(TypeIndicator),
				Count:         3,
			},
		},
		{
			name: "indicator valid_until before valid_from",
			obj: &Indicator{
				Common: Common{
					Type: TypeIndicator, ID: NewID(TypeIndicator),
					Created: TS(testTime), Modified: TS(testTime),
					Labels: []string{"malicious-activity"},
				},
				Pattern:    "[a:b = 'x']",
				ValidFrom:  TS(testTime),
				ValidUntil: TS(testTime.Add(-time.Hour)),
			},
			want: "must be after",
		},
		{
			name: "external reference missing source",
			obj: func() Object {
				v := NewVulnerability("CVE-2020-1", "", testTime)
				v.ExternalReferences = []ExternalReference{{URL: "https://x.example"}}
				return v
			}(),
			want: "missing source_name",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Validate(tt.obj)
			if tt.want == "" {
				if err != nil {
					t.Fatalf("valid object rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestBuilderSightingAndRelationship(t *testing.T) {
	ind := NewIndicator("[a:b = 'x']", []string{"malicious-activity"}, testTime)
	s := NewSighting(ind.ID, 2, testTime)
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if s.Count != 2 || s.SightingOfRef != ind.ID {
		t.Fatalf("sighting = %+v", s)
	}
}
