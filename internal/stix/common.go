// Package stix implements the STIX 2.0 data model used throughout the
// platform: the twelve STIX Domain Objects (SDOs), the relationship objects,
// and bundles, with JSON round-tripping that preserves custom properties
// (the heuristic component stores its threat score as a custom property on
// enriched IoCs). The paper adopts STIX 2.0 as the interchange format
// between the MISP-like operational module and the heuristic component.
package stix

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/uuid"
)

// Object type names for the STIX 2.0 SDOs and SROs.
const (
	TypeAttackPattern  = "attack-pattern"
	TypeCampaign       = "campaign"
	TypeCourseOfAction = "course-of-action"
	TypeIdentity       = "identity"
	TypeIndicator      = "indicator"
	TypeIntrusionSet   = "intrusion-set"
	TypeMalware        = "malware"
	TypeObservedData   = "observed-data"
	TypeReport         = "report"
	TypeThreatActor    = "threat-actor"
	TypeTool           = "tool"
	TypeVulnerability  = "vulnerability"
	TypeRelationship   = "relationship"
	TypeSighting       = "sighting"
	TypeBundle         = "bundle"
	TypeMarkingDef     = "marking-definition"
)

// SDOTypes lists the twelve STIX 2.0 domain object types in specification
// order. The paper selects six of them as heuristics (see package heuristic).
var SDOTypes = []string{
	TypeAttackPattern, TypeCampaign, TypeCourseOfAction, TypeIdentity,
	TypeIndicator, TypeIntrusionSet, TypeMalware, TypeObservedData,
	TypeReport, TypeThreatActor, TypeTool, TypeVulnerability,
}

var errBadID = errors.New("stix: malformed identifier")

// NewID returns a fresh random identifier "<type>--<uuidv4>" for typ.
func NewID(typ string) string {
	return typ + "--" + uuid.NewV4().String()
}

// DeterministicID derives a stable identifier for typ from name, so repeated
// imports of the same logical object map to the same STIX id.
func DeterministicID(typ, name string) string {
	return typ + "--" + uuid.NewV5(uuid.NamespaceCAISP, []byte(typ+"/"+name)).String()
}

// ParseID splits a STIX identifier into its type and UUID components.
func ParseID(id string) (typ string, u uuid.UUID, err error) {
	typ, rest, ok := strings.Cut(id, "--")
	if !ok || typ == "" {
		return "", uuid.Nil, errBadID
	}
	u, err = uuid.Parse(rest)
	if err != nil {
		return "", uuid.Nil, fmt.Errorf("%w: %q", errBadID, id)
	}
	return typ, u, nil
}

// ValidID reports whether id is a well-formed STIX identifier of any type.
func ValidID(id string) bool {
	_, _, err := ParseID(id)
	return err == nil
}

// IDType returns the type component of a STIX identifier, or "" if malformed.
func IDType(id string) string {
	typ, _, err := ParseID(id)
	if err != nil {
		return ""
	}
	return typ
}

// timestampLayout is the STIX 2.0 serialization of timestamps: RFC 3339 in
// UTC with millisecond precision and a literal Z designator.
const timestampLayout = "2006-01-02T15:04:05.000Z"

// Timestamp is a STIX timestamp. It marshals in the exact format mandated by
// the specification and accepts any RFC 3339 subsecond precision on input.
type Timestamp struct {
	time.Time
}

// TS builds a Timestamp from a time.Time, normalized to UTC.
func TS(t time.Time) Timestamp { return Timestamp{t.UTC()} }

// MarshalJSON renders the timestamp in STIX canonical form.
func (t Timestamp) MarshalJSON() ([]byte, error) {
	if t.IsZero() {
		return []byte(`null`), nil
	}
	return []byte(`"` + t.UTC().Format(timestampLayout) + `"`), nil
}

// UnmarshalJSON accepts RFC 3339 timestamps with any fractional precision.
func (t *Timestamp) UnmarshalJSON(data []byte) error {
	s := strings.Trim(string(data), `"`)
	if s == "null" || s == "" {
		t.Time = time.Time{}
		return nil
	}
	parsed, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return fmt.Errorf("stix: bad timestamp %q: %w", s, err)
	}
	t.Time = parsed.UTC()
	return nil
}

// ExternalReference points at non-STIX information (a CVE entry, a CAPEC
// pattern, an advisory URL). Table IV scores the external_references feature
// by how many of these resolve against a local inventory of known sources.
type ExternalReference struct {
	SourceName  string `json:"source_name"`
	Description string `json:"description,omitempty"`
	URL         string `json:"url,omitempty"`
	ExternalID  string `json:"external_id,omitempty"`
}

// KillChainPhase places an object within a kill chain model.
type KillChainPhase struct {
	KillChainName string `json:"kill_chain_name"`
	PhaseName     string `json:"phase_name"`
}

// Common carries the properties shared by every STIX domain object.
type Common struct {
	Type               string              `json:"type"`
	ID                 string              `json:"id"`
	CreatedByRef       string              `json:"created_by_ref,omitempty"`
	Created            Timestamp           `json:"created"`
	Modified           Timestamp           `json:"modified"`
	Revoked            bool                `json:"revoked,omitempty"`
	Labels             []string            `json:"labels,omitempty"`
	ExternalReferences []ExternalReference `json:"external_references,omitempty"`
	ObjectMarkingRefs  []string            `json:"object_marking_refs,omitempty"`

	// Extra holds custom (x_…) and otherwise unrecognized properties so
	// they survive a decode/encode round trip. Keys that collide with
	// declared struct fields are ignored on marshal.
	Extra map[string]any `json:"-"`
}

// GetCommon returns the embedded common properties; it makes any SDO pointer
// satisfy the Object interface.
func (c *Common) GetCommon() *Common { return c }

// SetExtra records a custom property on the object.
func (c *Common) SetExtra(key string, value any) {
	if c.Extra == nil {
		c.Extra = make(map[string]any)
	}
	c.Extra[key] = value
}

// ExtraString returns the named custom property as a string, if present.
func (c *Common) ExtraString(key string) (string, bool) {
	v, ok := c.Extra[key]
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// ExtraFloat returns the named custom property as a float64, if present.
func (c *Common) ExtraFloat(key string) (float64, bool) {
	v, ok := c.Extra[key]
	if !ok {
		return 0, false
	}
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	default:
		return 0, false
	}
}

// MarkingDefinition is the STIX 2.0 data-marking object. Only the
// statement and TLP definition types are modelled; the four TLP markings
// are predefined per the specification.
type MarkingDefinition struct {
	Type           string         `json:"type"`
	ID             string         `json:"id"`
	Created        Timestamp      `json:"created"`
	DefinitionType string         `json:"definition_type"`
	Definition     map[string]any `json:"definition"`
}

// The four predefined TLP marking ids from the STIX 2.0 specification.
const (
	TLPWhiteID = "marking-definition--613f2e26-407d-48c7-9eca-b8e91df99dc9"
	TLPGreenID = "marking-definition--34098fce-860f-48ae-8e50-ebd3cc5e41da"
	TLPAmberID = "marking-definition--f88d31f6-486f-44da-b317-01333bde0b82"
	TLPRedID   = "marking-definition--5e57c739-391a-4eb3-b6be-7d15ca92d5ed"
)

// TLPMarking returns the predefined marking-definition object for a TLP
// level name ("white", "green", "amber", "red"), or nil for other names.
func TLPMarking(level string) *MarkingDefinition {
	ids := map[string]string{
		"white": TLPWhiteID, "green": TLPGreenID,
		"amber": TLPAmberID, "red": TLPRedID,
	}
	id, ok := ids[level]
	if !ok {
		return nil
	}
	return &MarkingDefinition{
		Type:           TypeMarkingDef,
		ID:             id,
		Created:        TS(time.Date(2017, 1, 20, 0, 0, 0, 0, time.UTC)),
		DefinitionType: "tlp",
		Definition:     map[string]any{"tlp": level},
	}
}

// Object is implemented by every STIX object in this package.
type Object interface {
	// GetCommon exposes the shared STIX properties of the object.
	GetCommon() *Common
}
