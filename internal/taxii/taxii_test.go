package taxii

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func testServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	clock := now
	opts = append([]Option{WithNow(func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	})}, opts...)
	s := NewServer("CAISP TAXII", "caisp", opts...)
	s.AddCollection("eiocs", "Enriched IoCs", "eIoCs shared by the platform", true)
	s.AddCollection("readonly", "Read-only", "", false)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func vuln(t *testing.T, name string) *stix.Vulnerability {
	t.Helper()
	return stix.NewVulnerability(name, "test", now)
}

func TestDiscoveryAndCollections(t *testing.T) {
	_, srv := testServer(t)
	c := NewClient(srv.URL, "")

	d, err := c.Discover()
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "CAISP TAXII" || len(d.APIRoots) != 1 || d.APIRoots[0] != "/caisp/" {
		t.Fatalf("discovery = %+v", d)
	}
	cols, err := c.Collections("caisp")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 {
		t.Fatalf("collections = %+v", cols)
	}
	if cols[0].ID != "eiocs" || !cols[0].CanWrite || cols[1].CanWrite {
		t.Fatalf("collection metadata wrong: %+v", cols)
	}
}

func TestServerSideAddAndClientRead(t *testing.T) {
	s, srv := testServer(t)
	if err := s.AddObjects("eiocs", vuln(t, "CVE-2017-9805"), vuln(t, "CVE-2019-0001")); err != nil {
		t.Fatal(err)
	}
	if s.ObjectCount("eiocs") != 2 {
		t.Fatalf("ObjectCount = %d", s.ObjectCount("eiocs"))
	}
	c := NewClient(srv.URL, "")
	objs, err := c.AllObjects("caisp", "eiocs", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("fetched %d objects", len(objs))
	}
	if objs[0].GetCommon().Type != stix.TypeVulnerability {
		t.Fatalf("object type = %q", objs[0].GetCommon().Type)
	}
	if err := s.AddObjects("ghost", vuln(t, "x")); err == nil {
		t.Fatal("unknown collection accepted")
	}
}

func TestClientPush(t *testing.T) {
	s, srv := testServer(t)
	c := NewClient(srv.URL, "")
	st, err := c.AddObjects("caisp", "eiocs", vuln(t, "CVE-2020-0001"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != "complete" || st.SuccessCount != 1 || st.FailureCount != 0 {
		t.Fatalf("status = %+v", st)
	}
	if s.ObjectCount("eiocs") != 1 {
		t.Fatalf("server count = %d", s.ObjectCount("eiocs"))
	}
	// Read-only collection refuses writes.
	if _, err := c.AddObjects("caisp", "readonly", vuln(t, "x")); err == nil {
		t.Fatal("write to read-only collection accepted")
	}
}

func TestPagination(t *testing.T) {
	s, srv := testServer(t)
	var objs []stix.Object
	for i := 0; i < 25; i++ {
		objs = append(objs, vuln(t, "CVE-2020-"+strings.Repeat("0", 3)+string(rune('a'+i))))
	}
	if err := s.AddObjects("eiocs", objs...); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL, "")

	env, err := c.ObjectsPage("caisp", "eiocs", time.Time{}, 10, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Objects) != 10 || !env.More || env.Next == "" {
		t.Fatalf("page 1 = %d objects, more=%v", len(env.Objects), env.More)
	}
	env2, err := c.ObjectsPage("caisp", "eiocs", time.Time{}, 10, env.Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(env2.Objects) != 10 || !env2.More {
		t.Fatalf("page 2 = %d objects, more=%v", len(env2.Objects), env2.More)
	}
	env3, err := c.ObjectsPage("caisp", "eiocs", time.Time{}, 10, env2.Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(env3.Objects) != 5 || env3.More {
		t.Fatalf("page 3 = %d objects, more=%v", len(env3.Objects), env3.More)
	}
	// AllObjects pages transparently.
	all, err := c.AllObjects("caisp", "eiocs", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 25 {
		t.Fatalf("AllObjects = %d", len(all))
	}
}

func TestAddedAfterFilter(t *testing.T) {
	s, srv := testServer(t)
	if err := s.AddObjects("eiocs", vuln(t, "early")); err != nil {
		t.Fatal(err)
	}
	// The fake clock advances one second per call; the second object is
	// added strictly later.
	if err := s.AddObjects("eiocs", vuln(t, "late")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL, "")
	all, err := c.AllObjects("caisp", "eiocs", time.Time{})
	if err != nil || len(all) != 2 {
		t.Fatalf("unfiltered = %d, %v", len(all), err)
	}
	filtered, err := c.AllObjects("caisp", "eiocs", now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 1 {
		t.Fatalf("added_after = %d objects, want 1", len(filtered))
	}
}

func TestTypeAndIDMatchFilters(t *testing.T) {
	s, srv := testServer(t)
	v := vuln(t, "CVE-2020-1111")
	ind := stix.NewIndicator("[domain-name:value = 'x.example']", []string{"malicious-activity"}, now)
	if err := s.AddObjects("eiocs", v, ind); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/caisp/collections/eiocs/objects/?match%5Btype%5D=vulnerability")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := decode(resp, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Objects) != 1 {
		t.Fatalf("type filter = %d objects", len(env.Objects))
	}
	resp2, err := http.Get(srv.URL + "/caisp/collections/eiocs/objects/?match%5Bid%5D=" + ind.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var env2 Envelope
	if err := decode(resp2, &env2); err != nil {
		t.Fatal(err)
	}
	if len(env2.Objects) != 1 {
		t.Fatalf("id filter = %d objects", len(env2.Objects))
	}
}

func TestAuthentication(t *testing.T) {
	_, srv := testServer(t, WithAPIKey("taxii-secret"))
	anon := NewClient(srv.URL, "")
	if _, err := anon.Discover(); err == nil {
		t.Fatal("anonymous access accepted")
	}
	authed := NewClient(srv.URL, "taxii-secret")
	if _, err := authed.Discover(); err != nil {
		t.Fatal(err)
	}
}

func TestBadRequests(t *testing.T) {
	_, srv := testServer(t)
	for _, path := range []string{
		"/caisp/collections/ghost/objects/",
		"/caisp/collections/ghost/",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
	for _, query := range []string{"added_after=yesterday", "limit=-1", "limit=zero", "next=abc"} {
		resp, err := http.Get(srv.URL + "/caisp/collections/eiocs/objects/?" + query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", query, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/caisp/collections/eiocs/objects/", ContentType, strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad envelope status = %d", resp.StatusCode)
	}
}

func TestContentType(t *testing.T) {
	_, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/taxii2/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != ContentType {
		t.Fatalf("Content-Type = %q", got)
	}
}

func decode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestManifest(t *testing.T) {
	s, srv := testServer(t)
	v1 := vuln(t, "CVE-2020-0001")
	v2 := vuln(t, "CVE-2020-0002")
	if err := s.AddObjects("eiocs", v1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddObjects("eiocs", v2); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL, "")
	entries, err := c.ManifestEntries("caisp", "eiocs", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].ID != v1.ID || entries[0].Version == "" {
		t.Fatalf("entry = %+v", entries[0])
	}
	// added_after filters (the fake clock ticks per AddObjects call).
	filtered, err := c.ManifestEntries("caisp", "eiocs", entries[0].DateAdded)
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 1 || filtered[0].ID != v2.ID {
		t.Fatalf("filtered = %+v", filtered)
	}
	if _, err := c.ManifestEntries("caisp", "ghost", time.Time{}); err == nil {
		t.Fatal("unknown collection accepted")
	}
}
