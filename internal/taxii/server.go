// Package taxii implements a TAXII 2.1 server and client — the standard
// channel the paper recommends for sharing threat intelligence with
// entities that do not run MISP (§II-A pairs STIX for describing cyber
// threat information with TAXII for sharing it in an automated and secure
// way). The server hosts collections of STIX objects with added_after
// filtering and pagination; the client consumes them.
package taxii

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

// ContentType is the TAXII 2.1 media type.
const ContentType = "application/taxii+json;version=2.1"

// Discovery is the server metadata document.
type Discovery struct {
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	Default     string   `json:"default,omitempty"`
	APIRoots    []string `json:"api_roots"`
}

// APIRoot describes one API root.
type APIRoot struct {
	Title            string   `json:"title"`
	Versions         []string `json:"versions"`
	MaxContentLength int      `json:"max_content_length"`
}

// Collection describes one collection.
type Collection struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	Description string   `json:"description,omitempty"`
	CanRead     bool     `json:"can_read"`
	CanWrite    bool     `json:"can_write"`
	MediaTypes  []string `json:"media_types"`
}

// Envelope is the TAXII 2.1 object transport.
type Envelope struct {
	More    bool              `json:"more"`
	Next    string            `json:"next,omitempty"`
	Objects []json.RawMessage `json:"objects"`
}

// ManifestEntry describes one object in a collection manifest.
type ManifestEntry struct {
	ID        string    `json:"id"`
	DateAdded time.Time `json:"date_added"`
	Version   string    `json:"version"`
	MediaType string    `json:"media_type"`
}

// Manifest is the TAXII 2.1 manifest envelope.
type Manifest struct {
	More    bool            `json:"more"`
	Objects []ManifestEntry `json:"objects"`
}

// Status reports the outcome of an object submission.
type Status struct {
	ID           string `json:"id"`
	Status       string `json:"status"`
	TotalCount   int    `json:"total_count"`
	SuccessCount int    `json:"success_count"`
	FailureCount int    `json:"failure_count"`
}

// storedObject couples an object with its server-side addition time.
type storedObject struct {
	raw     json.RawMessage
	id      string
	typ     string
	addedAt time.Time
	seq     int
}

// Server hosts TAXII collections. Safe for concurrent use.
type Server struct {
	title   string
	apiRoot string // path segment, e.g. "caisp"
	apiKey  string
	now     func() time.Time

	mu          sync.RWMutex
	collections map[string]*Collection
	objects     map[string][]storedObject
	seq         int

	mux *http.ServeMux
}

// Option configures a Server.
type Option interface{ apply(*Server) }

type apiKeyOption string

func (o apiKeyOption) apply(s *Server) { s.apiKey = string(o) }

// WithAPIKey requires the Authorization header to equal key.
func WithAPIKey(key string) Option { return apiKeyOption(key) }

type nowOption struct{ now func() time.Time }

func (o nowOption) apply(s *Server) { s.now = o.now }

// WithNow fixes the server clock (tests).
func WithNow(now func() time.Time) Option { return nowOption{now: now} }

// NewServer creates a TAXII server with one API root.
func NewServer(title, apiRoot string, opts ...Option) *Server {
	s := &Server{
		title:       title,
		apiRoot:     apiRoot,
		now:         time.Now,
		collections: make(map[string]*Collection),
		objects:     make(map[string][]storedObject),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /taxii2/", s.handleDiscovery)
	s.mux.HandleFunc("GET /"+apiRoot+"/", s.handleAPIRoot)
	s.mux.HandleFunc("GET /"+apiRoot+"/collections/", s.handleCollections)
	s.mux.HandleFunc("GET /"+apiRoot+"/collections/{id}/", s.handleCollection)
	s.mux.HandleFunc("GET /"+apiRoot+"/collections/{id}/objects/", s.handleGetObjects)
	s.mux.HandleFunc("POST /"+apiRoot+"/collections/{id}/objects/", s.handleAddObjects)
	s.mux.HandleFunc("GET /"+apiRoot+"/collections/{id}/manifest/", s.handleManifest)
	return s
}

// AddCollection registers a collection.
func (s *Server) AddCollection(id, title, description string, canWrite bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collections[id] = &Collection{
		ID:          id,
		Title:       title,
		Description: description,
		CanRead:     true,
		CanWrite:    canWrite,
		MediaTypes:  []string{"application/stix+json;version=2.0"},
	}
}

// AddObjects stores STIX objects into a collection server-side (the path
// the platform uses to publish eIoCs).
func (s *Server) AddObjects(collectionID string, objs ...stix.Object) error {
	raws := make([]json.RawMessage, 0, len(objs))
	for _, o := range objs {
		data, err := stix.Marshal(o)
		if err != nil {
			return err
		}
		raws = append(raws, data)
	}
	n, err := s.addRaw(collectionID, raws)
	if err != nil {
		return err
	}
	if n != len(objs) {
		return fmt.Errorf("taxii: stored %d of %d objects", n, len(objs))
	}
	return nil
}

// ObjectCount reports how many objects a collection holds.
func (s *Server) ObjectCount(collectionID string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects[collectionID])
}

func (s *Server) addRaw(collectionID string, raws []json.RawMessage) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.collections[collectionID]; !ok {
		return 0, fmt.Errorf("taxii: unknown collection %q", collectionID)
	}
	stored := 0
	now := s.now().UTC()
	for _, raw := range raws {
		var head struct {
			ID   string `json:"id"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil || head.ID == "" || head.Type == "" {
			continue
		}
		s.seq++
		s.objects[collectionID] = append(s.objects[collectionID], storedObject{
			raw:     raw,
			id:      head.ID,
			typ:     head.Type,
			addedAt: now,
			seq:     s.seq,
		})
		stored++
	}
	return stored, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.apiKey != "" && r.Header.Get("Authorization") != s.apiKey {
		taxiiError(w, http.StatusUnauthorized, "invalid or missing API key")
		return
	}
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleDiscovery(w http.ResponseWriter, r *http.Request) {
	writeTAXII(w, http.StatusOK, Discovery{
		Title:    s.title,
		Default:  "/" + s.apiRoot + "/",
		APIRoots: []string{"/" + s.apiRoot + "/"},
	})
}

func (s *Server) handleAPIRoot(w http.ResponseWriter, _ *http.Request) {
	writeTAXII(w, http.StatusOK, APIRoot{
		Title:            s.title,
		Versions:         []string{"application/taxii+json;version=2.1"},
		MaxContentLength: 32 << 20,
	})
}

func (s *Server) handleCollections(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	list := make([]*Collection, 0, len(s.collections))
	for _, c := range s.collections {
		list = append(list, c)
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeTAXII(w, http.StatusOK, map[string]any{"collections": list})
}

func (s *Server) handleCollection(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	c, ok := s.collections[r.PathValue("id")]
	s.mu.RUnlock()
	if !ok {
		taxiiError(w, http.StatusNotFound, "unknown collection")
		return
	}
	writeTAXII(w, http.StatusOK, c)
}

func (s *Server) handleGetObjects(w http.ResponseWriter, r *http.Request) {
	collectionID := r.PathValue("id")
	s.mu.RLock()
	_, known := s.collections[collectionID]
	objs := make([]storedObject, len(s.objects[collectionID]))
	copy(objs, s.objects[collectionID])
	s.mu.RUnlock()
	if !known {
		taxiiError(w, http.StatusNotFound, "unknown collection")
		return
	}

	q := r.URL.Query()
	if raw := q.Get("added_after"); raw != "" {
		after, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			taxiiError(w, http.StatusBadRequest, "bad added_after")
			return
		}
		var kept []storedObject
		for _, o := range objs {
			if o.addedAt.After(after) {
				kept = append(kept, o)
			}
		}
		objs = kept
	}
	if typ := q.Get("match[type]"); typ != "" {
		var kept []storedObject
		for _, o := range objs {
			if o.typ == typ {
				kept = append(kept, o)
			}
		}
		objs = kept
	}
	if id := q.Get("match[id]"); id != "" {
		var kept []storedObject
		for _, o := range objs {
			if o.id == id {
				kept = append(kept, o)
			}
		}
		objs = kept
	}
	if raw := q.Get("next"); raw != "" {
		afterSeq, err := strconv.Atoi(raw)
		if err != nil {
			taxiiError(w, http.StatusBadRequest, "bad next token")
			return
		}
		var kept []storedObject
		for _, o := range objs {
			if o.seq > afterSeq {
				kept = append(kept, o)
			}
		}
		objs = kept
	}

	limit := 100
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			taxiiError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}

	env := Envelope{Objects: []json.RawMessage{}}
	for i, o := range objs {
		if i >= limit {
			env.More = true
			env.Next = strconv.Itoa(objs[i-1].seq)
			break
		}
		env.Objects = append(env.Objects, o.raw)
	}
	writeTAXII(w, http.StatusOK, env)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	collectionID := r.PathValue("id")
	s.mu.RLock()
	_, known := s.collections[collectionID]
	objs := make([]storedObject, len(s.objects[collectionID]))
	copy(objs, s.objects[collectionID])
	s.mu.RUnlock()
	if !known {
		taxiiError(w, http.StatusNotFound, "unknown collection")
		return
	}
	if raw := r.URL.Query().Get("added_after"); raw != "" {
		after, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			taxiiError(w, http.StatusBadRequest, "bad added_after")
			return
		}
		var kept []storedObject
		for _, o := range objs {
			if o.addedAt.After(after) {
				kept = append(kept, o)
			}
		}
		objs = kept
	}
	manifest := Manifest{Objects: []ManifestEntry{}}
	for _, o := range objs {
		manifest.Objects = append(manifest.Objects, ManifestEntry{
			ID:        o.id,
			DateAdded: o.addedAt,
			Version:   o.addedAt.UTC().Format(time.RFC3339),
			MediaType: "application/stix+json;version=2.0",
		})
	}
	writeTAXII(w, http.StatusOK, manifest)
}

func (s *Server) handleAddObjects(w http.ResponseWriter, r *http.Request) {
	collectionID := r.PathValue("id")
	s.mu.RLock()
	c, ok := s.collections[collectionID]
	s.mu.RUnlock()
	if !ok {
		taxiiError(w, http.StatusNotFound, "unknown collection")
		return
	}
	if !c.CanWrite {
		taxiiError(w, http.StatusForbidden, "collection is read-only")
		return
	}
	var env Envelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		taxiiError(w, http.StatusBadRequest, "bad envelope: "+err.Error())
		return
	}
	stored, err := s.addRaw(collectionID, env.Objects)
	if err != nil {
		taxiiError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeTAXII(w, http.StatusAccepted, Status{
		ID:           fmt.Sprintf("status-%d", s.now().UnixNano()),
		Status:       "complete",
		TotalCount:   len(env.Objects),
		SuccessCount: stored,
		FailureCount: len(env.Objects) - stored,
	})
}

func writeTAXII(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func taxiiError(w http.ResponseWriter, status int, msg string) {
	writeTAXII(w, status, map[string]string{"title": msg})
}
