package taxii

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

// Client consumes a TAXII 2.1 server.
type Client struct {
	baseURL string
	apiKey  string
	http    *http.Client
}

// NewClient builds a client for the server at baseURL.
func NewClient(baseURL, apiKey string) *Client {
	return &Client{
		baseURL: baseURL,
		apiKey:  apiKey,
		http:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Discover fetches the discovery document.
func (c *Client) Discover() (Discovery, error) {
	var d Discovery
	err := c.get("/taxii2/", nil, &d)
	return d, err
}

// Collections lists the collections of an API root ("caisp" → /caisp/…).
func (c *Client) Collections(apiRoot string) ([]Collection, error) {
	var resp struct {
		Collections []Collection `json:"collections"`
	}
	err := c.get("/"+apiRoot+"/collections/", nil, &resp)
	return resp.Collections, err
}

// ObjectsPage fetches one page of objects.
func (c *Client) ObjectsPage(apiRoot, collectionID string, addedAfter time.Time, limit int, next string) (Envelope, error) {
	params := url.Values{}
	if !addedAfter.IsZero() {
		params.Set("added_after", addedAfter.UTC().Format(time.RFC3339))
	}
	if limit > 0 {
		params.Set("limit", fmt.Sprint(limit))
	}
	if next != "" {
		params.Set("next", next)
	}
	var env Envelope
	err := c.get("/"+apiRoot+"/collections/"+url.PathEscape(collectionID)+"/objects/", params, &env)
	return env, err
}

// AllObjects pages through a collection and decodes every STIX object.
// Objects of unknown type are skipped.
func (c *Client) AllObjects(apiRoot, collectionID string, addedAfter time.Time) ([]stix.Object, error) {
	var out []stix.Object
	next := ""
	for {
		env, err := c.ObjectsPage(apiRoot, collectionID, addedAfter, 100, next)
		if err != nil {
			return nil, err
		}
		for _, raw := range env.Objects {
			obj, err := stix.Unmarshal(raw)
			if err != nil {
				continue
			}
			out = append(out, obj)
		}
		if !env.More {
			return out, nil
		}
		next = env.Next
	}
}

// ManifestEntries fetches the collection manifest.
func (c *Client) ManifestEntries(apiRoot, collectionID string, addedAfter time.Time) ([]ManifestEntry, error) {
	params := url.Values{}
	if !addedAfter.IsZero() {
		params.Set("added_after", addedAfter.UTC().Format(time.RFC3339))
	}
	var m Manifest
	err := c.get("/"+apiRoot+"/collections/"+url.PathEscape(collectionID)+"/manifest/", params, &m)
	return m.Objects, err
}

// AddObjects submits STIX objects to a writable collection.
func (c *Client) AddObjects(apiRoot, collectionID string, objs ...stix.Object) (Status, error) {
	env := Envelope{Objects: make([]json.RawMessage, 0, len(objs))}
	for _, o := range objs {
		data, err := stix.Marshal(o)
		if err != nil {
			return Status{}, err
		}
		env.Objects = append(env.Objects, data)
	}
	body, err := json.Marshal(env)
	if err != nil {
		return Status{}, err
	}
	req, err := http.NewRequest(http.MethodPost,
		c.baseURL+"/"+apiRoot+"/collections/"+url.PathEscape(collectionID)+"/objects/",
		bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	c.decorate(req)
	req.Header.Set("Content-Type", ContentType)
	resp, err := c.http.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return Status{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return Status{}, fmt.Errorf("taxii: add objects: status %s: %s", resp.Status, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		return Status{}, fmt.Errorf("taxii: decode status: %w", err)
	}
	return st, nil
}

func (c *Client) get(path string, params url.Values, out any) error {
	u := c.baseURL + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("taxii: build request: %w", err)
	}
	c.decorate(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("taxii: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return fmt.Errorf("taxii: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("taxii: GET %s: status %d: %s", path, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("taxii: decode response: %w", err)
	}
	return nil
}

func (c *Client) decorate(req *http.Request) {
	req.Header.Set("Accept", ContentType)
	if c.apiKey != "" {
		req.Header.Set("Authorization", c.apiKey)
	}
}
