package heuristic

import (
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/cvss"
	"github.com/caisplatform/caisp/internal/stix"
)

// Custom STIX properties the pipeline attaches to converted IoCs and the
// evaluators consult. All are optional.
const (
	// PropProducts is a comma-separated product/application list
	// ("apache struts,apache").
	PropProducts = "x_caisp_products"
	// PropOS names the affected operating system ("debian").
	PropOS = "x_caisp_os"
	// PropCVSSVector carries a CVSS v2/v3 vector string.
	PropCVSSVector = "x_caisp_cvss_vector"
	// PropSourceType is "osint" or "infrastructure".
	PropSourceType = "x_caisp_source_type"
	// PropSources is a comma-separated list of reporting feeds.
	PropSources = "x_caisp_sources"
	// PropValidUntil is an RFC 3339 expiry for vulnerability IoCs (the
	// vulnerability SDO has no native valid_until property).
	PropValidUntil = "x_caisp_valid_until"
)

// knownRefSources is the local inventory of reference sources the
// external_references feature checks against (Table IV: "external
// references checked against a local inventory").
var knownRefSources = map[string]bool{
	"cve": true, "capec": true, "nvd": true, "cwe": true,
	"exploit-db": true, "mitre-attack": true, "osvdb": true,
}

// VulnerabilityHeuristic builds the nine-feature vulnerability heuristic of
// Table IV/V. The criteria points reproduce the Pi column of Table V:
// point totals (8, 8, 12, 8, 4, 4, 4, 23, 17) so that with valid_until
// empty the remaining eight weigh 84 points.
func VulnerabilityHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeVulnerability,
		Features: []FeatureSpec{
			{
				Name:        "operating_system",
				Description: "Information about the affected operating system",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 1, Timeliness: 1, Variety: 1}, // 8
				Evaluate:    evalOperatingSystem,
			},
			{
				Name:        "source_diversity",
				Description: "Whether the IoC was reported by OSINT, other external sources, or the infrastructure itself",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 1, Timeliness: 1, Variety: 1}, // 8
				Evaluate:    evalSourceDiversity,
			},
			{
				Name:        "application",
				Description: "Whether the affected application is present in the monitored infrastructure",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 5, Timeliness: 1, Variety: 1}, // 12
				Evaluate:    evalApplication,
			},
			{
				Name:        "vuln_app_in_alarm",
				Description: "Whether infrastructure alarms already involve the affected application",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 1, Timeliness: 1, Variety: 1}, // 8
				Evaluate:    evalVulnAppInAlarm,
			},
			{
				Name:        "modified",
				Description: "Recency of creation/last modification",
				Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1}, // 4
				Evaluate:    evalModifiedRecency,
			},
			{
				Name:        "valid_from",
				Description: "From when the IoC is considered valid",
				Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1}, // 4
				Evaluate:    evalValidFrom,
			},
			{
				Name:        "valid_until",
				Description: "Until when the IoC is considered valid",
				Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1}, // 4
				Evaluate:    evalValidUntil,
			},
			{
				Name:        "external_references",
				Description: "External references checked against the local inventory of known sources",
				Points:      CriteriaPoints{Relevance: 7, Accuracy: 10, Timeliness: 1, Variety: 5}, // 23
				Evaluate:    evalExternalReferences,
			},
			{
				Name:        "cve",
				Description: "CVE presence and CVSS severity band",
				Points:      CriteriaPoints{Relevance: 10, Accuracy: 5, Timeliness: 1, Variety: 1}, // 17
				Evaluate:    evalCVE,
			},
		},
	}
}

// evalOperatingSystem scores Table IV's operating_system attribute set:
// windows (5), linux family (3, covering the paper's debian → 3), other
// named systems (1), unknown → empty.
func evalOperatingSystem(ctx *Context, obj stix.Object) (float64, bool) {
	osName := extractOS(ctx, obj)
	switch {
	case osName == "":
		return 0, false
	case osName == "windows":
		return 5, true
	case isLinuxFamily(osName):
		return 3, true
	default:
		return 1, true
	}
}

// evalSourceDiversity scores Table IV's source_diversity: OSINT_source (1),
// No_OSINT_source (2), infrastructure_source (3).
func evalSourceDiversity(ctx *Context, obj stix.Object) (float64, bool) {
	c := obj.GetCommon()
	if ctx.Infra != nil {
		if name := objectName(obj); name != "" && ctx.Infra.HasInternalSighting(name) {
			return 3, true
		}
	}
	srcType, ok := c.ExtraString(PropSourceType)
	if !ok {
		if _, fromMISP := c.ExtraString("x_misp_event_uuid"); fromMISP {
			return 1, true // stored OSINT events default to OSINT provenance
		}
		return 0, false
	}
	if strings.EqualFold(srcType, "osint") {
		return 1, true
	}
	if strings.EqualFold(srcType, "infrastructure") {
		return 3, true
	}
	return 2, true
}

// evalApplication scores Table IV's application: present in the monitored
// infrastructure (2), not present (1); empty without application info.
func evalApplication(ctx *Context, obj stix.Object) (float64, bool) {
	products := extractProducts(ctx, obj)
	if len(products) == 0 {
		return 0, false
	}
	if ctx.Infra != nil && ctx.Infra.Inventory().Match(products).Matched() {
		return 2, true
	}
	return 1, true
}

// evalVulnAppInAlarm scores whether alarms already involve the affected
// application: yes (2), no (1); empty without application info.
func evalVulnAppInAlarm(ctx *Context, obj stix.Object) (float64, bool) {
	products := extractProducts(ctx, obj)
	if len(products) == 0 {
		return 0, false
	}
	if ctx.Infra != nil {
		for _, p := range products {
			if len(ctx.Infra.AlarmsMatchingApplication(p)) > 0 {
				return 2, true
			}
		}
	}
	return 1, true
}

// evalModifiedRecency buckets the modification timestamp: last 24h (5),
// week (4), month (3), year (2), older (1).
func evalModifiedRecency(ctx *Context, obj stix.Object) (float64, bool) {
	c := obj.GetCommon()
	ts := c.Modified.Time
	if ts.IsZero() {
		ts = c.Created.Time
	}
	if ts.IsZero() {
		return 0, false
	}
	return recencyScore(ctx.Now.Sub(ts)), true
}

// recencyScore buckets an age per Table IV: last 24h (5), week (4),
// month (3), year (2), older (1).
func recencyScore(age time.Duration) float64 {
	switch {
	case age <= 24*time.Hour:
		return 5
	case age <= 7*24*time.Hour:
		return 4
	case age <= 30*24*time.Hour:
		return 3
	case age <= 365*24*time.Hour:
		return 2
	default:
		return 1
	}
}

// evalValidFrom buckets validity start: last week (3), month (2), year (1),
// older (0 but present).
func evalValidFrom(ctx *Context, obj stix.Object) (float64, bool) {
	from := validFrom(obj)
	if from.IsZero() {
		return 0, false
	}
	age := ctx.Now.Sub(from)
	switch {
	case age <= 7*24*time.Hour:
		return 3, true
	case age <= 30*24*time.Hour:
		return 2, true
	case age <= 365*24*time.Hour:
		return 1, true
	default:
		return 0, true
	}
}

// evalValidUntil scores still-valid IoCs (5) over expired ones (1); empty
// when no expiry is known — the paper's use case discards exactly this
// feature.
func evalValidUntil(ctx *Context, obj stix.Object) (float64, bool) {
	until := validUntil(obj)
	if until.IsZero() {
		return 0, false
	}
	if until.After(ctx.Now) {
		return 5, true
	}
	return 1, true
}

// evalExternalReferences scores Table IV's reference inventory check:
// several known sources (5), one known source (3), only unknown sources
// (1); empty without references.
func evalExternalReferences(_ *Context, obj stix.Object) (float64, bool) {
	refs := obj.GetCommon().ExternalReferences
	if len(refs) == 0 {
		return 0, false
	}
	known := 0
	for _, ref := range refs {
		if knownRefSources[strings.ToLower(ref.SourceName)] {
			known++
		}
	}
	switch {
	case known >= 2:
		return 5, true
	case known == 1:
		return 3, true
	default:
		return 1, true
	}
}

// evalCVE scores Table IV's cve feature: no CVE → empty, CVE without CVSS
// (1), then by severity band: low (2), medium (3), high (4), critical (5).
func evalCVE(_ *Context, obj stix.Object) (float64, bool) {
	cveID := extractCVE(obj)
	if cveID == "" {
		return 0, false
	}
	sev, ok := cvssSeverity(obj)
	if !ok {
		return 1, true
	}
	switch sev {
	case cvss.SeverityLow:
		return 2, true
	case cvss.SeverityMedium:
		return 3, true
	case cvss.SeverityHigh:
		return 4, true
	case cvss.SeverityCritical:
		return 5, true
	default: // SeverityNone — a vector proving no impact
		return 1, true
	}
}

// --- extraction helpers -------------------------------------------------

var linuxFamily = map[string]bool{
	"linux": true, "debian": true, "ubuntu": true, "centos": true,
	"redhat": true, "rhel": true, "fedora": true, "suse": true,
	"alpine": true,
}

func isLinuxFamily(osName string) bool { return linuxFamily[osName] }

func extractOS(ctx *Context, obj stix.Object) string {
	c := obj.GetCommon()
	if osName, ok := c.ExtraString(PropOS); ok && osName != "" {
		return strings.ToLower(strings.TrimSpace(osName))
	}
	// Fall back to scanning the description for well-known OS names.
	desc := strings.ToLower(objectDescription(obj))
	for _, candidate := range []string{"windows", "debian", "ubuntu", "centos", "redhat", "fedora", "linux", "macos", "solaris", "freebsd"} {
		if strings.Contains(desc, candidate) {
			return candidate
		}
	}
	return ""
}

func extractProducts(ctx *Context, obj stix.Object) []string {
	c := obj.GetCommon()
	if list, ok := c.ExtraString(PropProducts); ok && list != "" {
		var out []string
		for _, p := range strings.Split(list, ",") {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	// Fall back to matching the description against the infrastructure's
	// application vocabulary.
	if ctx.Infra == nil {
		return nil
	}
	desc := strings.ToLower(objectName(obj) + " " + objectDescription(obj))
	var out []string
	for _, keyword := range ctx.Infra.ApplicationKeywords() {
		if strings.Contains(desc, keyword) {
			out = append(out, keyword)
		}
	}
	return out
}

func extractCVE(obj stix.Object) string {
	c := obj.GetCommon()
	for _, ref := range c.ExternalReferences {
		if strings.EqualFold(ref.SourceName, "cve") && ref.ExternalID != "" {
			return strings.ToUpper(ref.ExternalID)
		}
	}
	if name := objectName(obj); strings.HasPrefix(strings.ToUpper(name), "CVE-") {
		return strings.ToUpper(name)
	}
	return ""
}

func cvssSeverity(obj stix.Object) (cvss.Severity, bool) {
	vec, ok := obj.GetCommon().ExtraString(PropCVSSVector)
	if !ok || vec == "" {
		return 0, false
	}
	if v3, err := cvss.ParseV3(vec); err == nil {
		return v3.Severity(), true
	}
	if v2, err := cvss.ParseV2(vec); err == nil {
		return v2.Severity(), true
	}
	return 0, false
}

func validFrom(obj stix.Object) time.Time {
	if ind, ok := obj.(*stix.Indicator); ok && !ind.ValidFrom.IsZero() {
		return ind.ValidFrom.Time
	}
	// Vulnerabilities have no native valid_from: the paper takes the
	// creation date ("it is valid for one year" from creation).
	return obj.GetCommon().Created.Time
}

func validUntil(obj stix.Object) time.Time {
	if ind, ok := obj.(*stix.Indicator); ok && !ind.ValidUntil.IsZero() {
		return ind.ValidUntil.Time
	}
	if raw, ok := obj.GetCommon().ExtraString(PropValidUntil); ok && raw != "" {
		if ts, err := time.Parse(time.RFC3339, raw); err == nil {
			return ts.UTC()
		}
	}
	return time.Time{}
}

func objectName(obj stix.Object) string {
	switch o := obj.(type) {
	case *stix.Vulnerability:
		return o.Name
	case *stix.Malware:
		return o.Name
	case *stix.AttackPattern:
		return o.Name
	case *stix.Tool:
		return o.Name
	case *stix.Identity:
		return o.Name
	case *stix.Indicator:
		return o.Name
	default:
		return ""
	}
}

func objectDescription(obj stix.Object) string {
	switch o := obj.(type) {
	case *stix.Vulnerability:
		return o.Description
	case *stix.Malware:
		return o.Description
	case *stix.AttackPattern:
		return o.Description
	case *stix.Tool:
		return o.Description
	case *stix.Identity:
		return o.Description
	case *stix.Indicator:
		return o.Description
	default:
		return ""
	}
}
