package heuristic

import (
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

// featureValue evaluates obj and returns the named feature's result.
func featureValue(t *testing.T, e *Engine, obj stix.Object, name string) FeatureResult {
	t.Helper()
	res, err := e.Evaluate(obj)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Features {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("feature %q not evaluated", name)
	return FeatureResult{}
}

func TestMalwareHeuristicFeatures(t *testing.T) {
	e, _ := useCaseEngine(t)
	recent := evalTime.Add(-2 * time.Hour)

	m := stix.NewMalware("emotet", []string{"trojan"}, recent)
	if got := featureValue(t, e, m, "category"); got.Value != 5 || !got.Present {
		t.Fatalf("category with vocab label = %+v", got)
	}
	m2 := stix.NewMalware("custom", []string{"weird-label"}, recent)
	if got := featureValue(t, e, m2, "category"); got.Value != 2 {
		t.Fatalf("category with unknown label = %+v", got)
	}

	if got := featureValue(t, e, m, "status"); got.Present {
		t.Fatalf("status without info = %+v, want empty", got)
	}
	m.SetExtra("x_caisp_status", "active")
	if got := featureValue(t, e, m, "status"); got.Value != 5 {
		t.Fatalf("active status = %+v", got)
	}
	m.SetExtra("x_caisp_status", "dormant")
	if got := featureValue(t, e, m, "status"); got.Value != 1 {
		t.Fatalf("inactive status = %+v", got)
	}

	// Recency buckets on a fresh object.
	if got := featureValue(t, e, m, "modified"); got.Value != 5 {
		t.Fatalf("modified (2h ago) = %+v, want 5", got)
	}
	if got := featureValue(t, e, m, "created"); got.Value != 5 {
		t.Fatalf("created (2h ago) = %+v, want 5", got)
	}

	m.KillChainPhases = []stix.KillChainPhase{
		{KillChainName: "lockheed", PhaseName: "delivery"},
	}
	if got := featureValue(t, e, m, "kill_chain_phases"); got.Value != 3 {
		t.Fatalf("one kill chain phase = %+v", got)
	}
	m.KillChainPhases = append(m.KillChainPhases,
		stix.KillChainPhase{KillChainName: "lockheed", PhaseName: "c2"})
	if got := featureValue(t, e, m, "kill_chain_phases"); got.Value != 5 {
		t.Fatalf("two kill chain phases = %+v", got)
	}
}

func TestIdentityHeuristicFeatures(t *testing.T) {
	e, _ := useCaseEngine(t)
	ident := stix.NewIdentity("ACME SOC", "organization", evalTime.Add(-time.Hour))
	if got := featureValue(t, e, ident, "identity_class"); got.Value != 5 {
		t.Fatalf("organization class = %+v", got)
	}
	ident.IdentityClass = "martian"
	if got := featureValue(t, e, ident, "identity_class"); got.Value != 1 {
		t.Fatalf("unknown class = %+v", got)
	}
	if got := featureValue(t, e, ident, "name"); got.Value != 2 || !got.Present {
		t.Fatalf("name = %+v", got)
	}
	if got := featureValue(t, e, ident, "sectors"); got.Present {
		t.Fatalf("sectors without info = %+v", got)
	}
	ident.Sectors = []string{"finance"}
	if got := featureValue(t, e, ident, "sectors"); got.Value != 3 {
		t.Fatalf("one sector = %+v", got)
	}
	ident.Sectors = append(ident.Sectors, "energy")
	if got := featureValue(t, e, ident, "sectors"); got.Value != 4 {
		t.Fatalf("two sectors = %+v", got)
	}
	if got := featureValue(t, e, ident, "location"); got.Present {
		t.Fatalf("location without info = %+v", got)
	}
	ident.SetExtra("x_caisp_location", "EU")
	if got := featureValue(t, e, ident, "location"); got.Value != 3 {
		t.Fatalf("location = %+v", got)
	}
}

func TestAttackPatternHeuristicFeatures(t *testing.T) {
	e, _ := useCaseEngine(t)
	ap := stix.NewAttackPattern("spearphishing", evalTime.Add(-time.Hour))
	if got := featureValue(t, e, ap, "attack_type"); got.Present {
		t.Fatalf("attack_type without labels = %+v", got)
	}
	ap.Labels = []string{"initial-access"}
	if got := featureValue(t, e, ap, "attack_type"); got.Value != 3 {
		t.Fatalf("one label = %+v", got)
	}
	if got := featureValue(t, e, ap, "detection_tool"); got.Present {
		t.Fatalf("detection_tool without info = %+v", got)
	}
	// A detection tool the infrastructure runs scores high…
	ap.SetExtra("x_caisp_detection_tool", "snort")
	if got := featureValue(t, e, ap, "detection_tool"); got.Value != 5 {
		t.Fatalf("deployed detection tool = %+v", got)
	}
	// … an absent one scores low.
	ap.SetExtra("x_caisp_detection_tool", "darktrace")
	if got := featureValue(t, e, ap, "detection_tool"); got.Value != 2 {
		t.Fatalf("missing detection tool = %+v", got)
	}
}

func TestIndicatorTypeAndSourceFeatures(t *testing.T) {
	e, _ := useCaseEngine(t)
	ind := stix.NewIndicator("[domain-name:value = 'x.example']",
		[]string{"malicious-activity"}, evalTime.Add(-time.Hour))
	if got := featureValue(t, e, ind, "indicator_type"); got.Value != 5 {
		t.Fatalf("vocab label = %+v", got)
	}
	ind.Labels = []string{"home-grown"}
	if got := featureValue(t, e, ind, "indicator_type"); got.Value != 2 {
		t.Fatalf("non-vocab label = %+v", got)
	}

	if got := featureValue(t, e, ind, "source_type"); got.Present {
		t.Fatalf("source_type without info = %+v", got)
	}
	ind.SetExtra(PropSourceType, "infrastructure")
	if got := featureValue(t, e, ind, "source_type"); got.Value != 5 {
		t.Fatalf("infrastructure source = %+v", got)
	}
	ind.SetExtra(PropSourceType, "osint")
	if got := featureValue(t, e, ind, "source_type"); got.Value != 3 {
		t.Fatalf("osint source = %+v", got)
	}
}

func TestToolHeuristicFeatures(t *testing.T) {
	e, _ := useCaseEngine(t)
	tool := stix.NewTool("nmap", []string{"remote-access", "scanner"}, evalTime.Add(-time.Hour))
	if got := featureValue(t, e, tool, "tool_type"); got.Value != 5 {
		t.Fatalf("two labels = %+v", got)
	}
	if got := featureValue(t, e, tool, "name"); got.Value != 2 {
		t.Fatalf("name = %+v", got)
	}
	res, err := e.Evaluate(tool)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 || res.Score > MaxScore {
		t.Fatalf("tool score = %v", res.Score)
	}
}

func TestRecencyScoreBuckets(t *testing.T) {
	tests := []struct {
		age  time.Duration
		want float64
	}{
		{age: time.Hour, want: 5},
		{age: 3 * 24 * time.Hour, want: 4},
		{age: 20 * 24 * time.Hour, want: 3},
		{age: 200 * 24 * time.Hour, want: 2},
		{age: 500 * 24 * time.Hour, want: 1},
	}
	for _, tt := range tests {
		if got := recencyScore(tt.age); got != tt.want {
			t.Errorf("recencyScore(%v) = %v, want %v", tt.age, got, tt.want)
		}
	}
}
