package heuristic

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/stix"
)

// Custom properties written by enrichment.
const (
	// PropThreatScore carries the computed TS on an enriched IoC.
	PropThreatScore = "x_caisp_threat_score"
	// PropCriteria carries the per-feature breakdown of the TS.
	PropCriteria = "x_caisp_criteria"
	// PropCompleteness carries Cp.
	PropCompleteness = "x_caisp_completeness"
	// PropPriority carries the analyst-facing priority band.
	PropPriority = "x_caisp_priority"
)

// Enrich attaches the threat score and its breakdown to the object as
// custom properties, turning a composed IoC into an enriched IoC (eIoC).
// The paper: "the threat score … will be added to the original cIoC as a
// custom attribute. To improve the overall quality of the generated eIoCs,
// additional information associated to the criteria considered in the
// score evaluation could be used for the enrichment" (§III-C2).
func Enrich(obj stix.Object, res *Result) {
	c := obj.GetCommon()
	c.SetExtra(PropThreatScore, res.Score)
	c.SetExtra(PropCompleteness, res.Completeness)
	c.SetExtra(PropPriority, res.Priority())
	breakdown := make(map[string]any, len(res.Features))
	for _, f := range res.Features {
		breakdown[f.Name] = map[string]any{
			"value":   f.Value,
			"weight":  f.Weight,
			"present": f.Present,
		}
	}
	c.SetExtra(PropCriteria, breakdown)
}

// ThreatScoreOf reads an enriched object's score back, if present.
func ThreatScoreOf(obj stix.Object) (float64, bool) {
	return obj.GetCommon().ExtraFloat(PropThreatScore)
}

// RIoC is the reduced IoC: "only the rIoC, with just the most relevant
// information from the monitored infrastructure point of view, will be
// sent to the dashboard, while the eIoC will be stored locally" (§III).
// Per Figure 4 it carries the CVE, a description, the affected
// infrastructure and the threat score.
type RIoC struct {
	// ID identifies the rIoC; it keeps the link to the stored eIoC.
	ID string `json:"id"`
	// EIoCRef is the STIX id of the enriched IoC this reduces.
	EIoCRef string `json:"eioc_ref"`
	// SDOType is the heuristic type evaluated.
	SDOType string `json:"sdo_type"`
	// CVE is the vulnerability identifier, when applicable.
	CVE string `json:"cve,omitempty"`
	// Title is the IoC's name.
	Title string `json:"title"`
	// Description is the brief issue description shown on the dashboard.
	Description string `json:"description,omitempty"`
	// ThreatScore is the TS of the associated eIoC.
	ThreatScore float64 `json:"threat_score"`
	// Priority is the analyst-facing band of the score.
	Priority string `json:"priority"`
	// Application is the affected application keyword, if known.
	Application string `json:"application,omitempty"`
	// NodeIDs are the affected infrastructure nodes.
	NodeIDs []string `json:"node_ids"`
	// Breakdown carries the per-feature criteria detail of the score —
	// the paper's future-work item of exposing "detailed information
	// about each single criterion used in the evaluation" on the
	// dashboard (§VI). It is deliberately excluded from the wire form of
	// the rIoC (which must stay *reduced*); the dashboard serves it on
	// demand at /api/riocs/{id}.
	Breakdown []FeatureResult `json:"-"`
	// AllNodes is true when a common keyword matched the whole
	// infrastructure.
	AllNodes bool `json:"all_nodes"`
	// GeneratedAt stamps the reduction.
	GeneratedAt time.Time `json:"generated_at"`
	// EventUUID is the stored MISP event (the stable cluster identity) the
	// eIoC was converted from. It disambiguates rIoCs whose deterministic
	// SDO-derived ID collides across clusters (e.g. the same CVE observed
	// in two clusters), so the dashboard can update in place per cluster.
	EventUUID string `json:"event_uuid,omitempty"`
	// Revision counts in-place re-scores of the same rIoC as its cluster
	// grows; 0 for the first emission.
	Revision int `json:"revision"`
}

// JSON renders the rIoC for the dashboard socket.
func (r *RIoC) JSON() ([]byte, error) { return json.Marshal(r) }

// Reduce derives the reduced IoC from an enriched object. Per §IV: "if
// there is a match, the rIoC is generated, associated to a specific node
// … If there is no match, the rIoC is not generated, while, if the match
// is with a common keyword (e.g., Linux), the new rIoC is associated with
// all nodes." A nil result is returned when no rIoC should be produced.
func Reduce(obj stix.Object, res *Result, collector *infra.Collector, now time.Time) (*RIoC, error) {
	if collector == nil {
		return nil, fmt.Errorf("heuristic: reduction requires an infrastructure collector")
	}
	ctx := &Context{Now: now, Infra: collector}
	products := extractProducts(ctx, obj)
	match := collector.Inventory().Match(products)
	if !match.Matched() {
		return nil, nil
	}
	c := obj.GetCommon()
	r := &RIoC{
		ID:          "rioc--" + c.ID,
		EIoCRef:     c.ID,
		SDOType:     c.Type,
		CVE:         extractCVE(obj),
		Title:       objectName(obj),
		Description: objectDescription(obj),
		ThreatScore: res.Score,
		Priority:    res.Priority(),
		AllNodes:    match.AllNodes,
		NodeIDs:     match.Nodes(collector.Inventory()),
		GeneratedAt: now.UTC(),
	}
	if len(match.MatchedTerms) > 0 {
		r.Application = match.MatchedTerms[0]
	}
	if u, ok := c.ExtraString("x_misp_event_uuid"); ok {
		r.EventUUID = u
	}
	r.Breakdown = append(r.Breakdown, res.Features...)
	return r, nil
}
