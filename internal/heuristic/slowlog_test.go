package heuristic

import (
	"log/slog"
	"strings"
	"testing"
)

// TestSlowEvaluationLogged pins the slow-op path: an evaluation above the
// threshold emits one structured warning carrying the stage and SDO id.
func TestSlowEvaluationLogged(t *testing.T) {
	var sb strings.Builder
	logger := slog.New(slog.NewTextHandler(&sb, nil))
	e := NewEngine(WithLogger(logger), WithSlowThreshold(1)) // 1ns: everything is slow
	if _, err := e.Evaluate(useCaseIoC()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"slow heuristic evaluation", "stage=analyze", "sdo_type=vulnerability", "id="} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-op log missing %q:\n%s", want, out)
		}
	}

	// Below threshold: silent.
	sb.Reset()
	quiet := NewEngine(WithLogger(logger), WithSlowThreshold(1<<40)) // ~18min
	if _, err := quiet.Evaluate(useCaseIoC()); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("fast evaluation logged:\n%s", sb.String())
	}
}
