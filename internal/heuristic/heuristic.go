// Package heuristic implements the paper's core contribution: the heuristic
// engine of the Operational Module (§III-B2). It evaluates a set of
// features per STIX Domain Object type and produces a Threat Score
//
//	TS = Cp × Σ Xi·Pi,   0 ≤ TS ≤ 5
//
// where Xi is the value of feature i (Table IV), Pi its weight and Cp the
// completeness (non-empty features over total features).
//
// Weights follow the paper's §IV-B construction: each feature carries
// expert points on four criteria — Relevance, Accuracy, Timeliness,
// Variety — and Pi is that feature's point total over the point total of
// all *evaluated* (non-empty) features: the paper discards the empty
// valid_until feature "from our analysis", computing the remaining eight
// Pi over 84 points, while completeness still counts it (Cp = 8/9).
// StaticScore reproduces the fixed-weight variant of Table I.
package heuristic

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"time"

	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/stix"
)

// MaxScore is the upper bound of feature values and threat scores.
const MaxScore = 5.0

// CriteriaPoints is the expert point assignment of one feature over the
// four weighting criteria of §III-B2b.
type CriteriaPoints struct {
	Relevance  int `json:"relevance"`
	Accuracy   int `json:"accuracy"`
	Timeliness int `json:"timeliness"`
	Variety    int `json:"variety"`
}

// Total sums the four criteria.
func (c CriteriaPoints) Total() int {
	return c.Relevance + c.Accuracy + c.Timeliness + c.Variety
}

// Context is everything an evaluator may consult.
type Context struct {
	// Now is the evaluation instant (timeliness buckets).
	Now time.Time
	// Infra is the infrastructure collector; nil means no infrastructure
	// knowledge (accuracy-style features then evaluate as empty or their
	// no-information attribute).
	Infra *infra.Collector
}

// Evaluator produces a feature value for one STIX object. present=false
// marks the feature empty: it contributes nothing and lowers completeness.
type Evaluator func(ctx *Context, obj stix.Object) (value float64, present bool)

// FeatureSpec declares one feature of a heuristic.
type FeatureSpec struct {
	// Name is the feature identifier used in Tables II/IV/V.
	Name string
	// Description documents what the feature measures.
	Description string
	// Points carries the expert criteria points; Pi derives from them.
	Points CriteriaPoints
	// Evaluate extracts the feature value.
	Evaluate Evaluator
}

// Heuristic is a named feature set for one SDO type (Table II row).
type Heuristic struct {
	// SDOType is the STIX object type the heuristic applies to.
	SDOType string
	// Features is the ordered feature list.
	Features []FeatureSpec
}

// FeatureResult is the evaluation of one feature.
type FeatureResult struct {
	Name    string         `json:"name"`
	Value   float64        `json:"value"`  // Xi
	Weight  float64        `json:"weight"` // Pi (0 when discarded as empty)
	Points  CriteriaPoints `json:"points"`
	Present bool           `json:"present"`
}

// Result is the full outcome of a threat-score evaluation.
type Result struct {
	// SDOType names the heuristic applied.
	SDOType string `json:"sdo_type"`
	// Features lists per-feature values and weights in heuristic order.
	Features []FeatureResult `json:"features"`
	// Completeness is Cp = present / total.
	Completeness float64 `json:"completeness"`
	// WeightedSum is Σ Xi·Pi over present features.
	WeightedSum float64 `json:"weighted_sum"`
	// Score is the final TS.
	Score float64 `json:"score"`
	// EvaluatedAt is the Context.Now used.
	EvaluatedAt time.Time `json:"evaluated_at"`
}

// PresentCount returns the number of non-empty features.
func (r *Result) PresentCount() int {
	n := 0
	for _, f := range r.Features {
		if f.Present {
			n++
		}
	}
	return n
}

// Priority buckets the score for analysts: low < 1.7, medium < 3.3,
// high ≥ 3.3 (even thirds of the 0–5 range).
func (r *Result) Priority() string {
	switch {
	case r.Score < MaxScore/3:
		return "low"
	case r.Score < 2*MaxScore/3:
		return "medium"
	default:
		return "high"
	}
}

// Engine evaluates STIX objects against a heuristic registry.
type Engine struct {
	registry map[string]*Heuristic
	infra    *infra.Collector
	now      func() time.Time
	logger   *slog.Logger
	slowAt   time.Duration  // slow-op log threshold; 0 disables
	evalDur  *obs.Histogram // caisp_heuristic_eval_seconds; nil without WithMetrics
}

// Option configures an Engine.
type Option interface{ apply(*Engine) }

type infraOption struct{ c *infra.Collector }

func (o infraOption) apply(e *Engine) { e.infra = o.c }

// WithInfrastructure supplies the infrastructure collector used by
// accuracy-style features.
func WithInfrastructure(c *infra.Collector) Option { return infraOption{c: c} }

type nowOption struct{ now func() time.Time }

func (o nowOption) apply(e *Engine) { e.now = o.now }

// WithNow fixes the evaluation clock (tests and experiment reproduction).
func WithNow(now func() time.Time) Option { return nowOption{now: now} }

type heuristicOption struct{ h *Heuristic }

func (o heuristicOption) apply(e *Engine) { e.registry[o.h.SDOType] = o.h }

// WithHeuristic overrides or adds a heuristic for one SDO type.
func WithHeuristic(h *Heuristic) Option { return heuristicOption{h: h} }

type loggerOption struct{ l *slog.Logger }

func (o loggerOption) apply(e *Engine) { e.logger = o.l }

// WithLogger sets the engine's logger (slow-op reports; see
// WithSlowThreshold). Nil restores the default logger.
func WithLogger(l *slog.Logger) Option { return loggerOption{l: l} }

type slowThresholdOption time.Duration

func (o slowThresholdOption) apply(e *Engine) { e.slowAt = time.Duration(o) }

// WithSlowThreshold logs a warning with the SDO type and object ID for
// every Evaluate call slower than d. Zero (the default) disables slow-op
// logging.
func WithSlowThreshold(d time.Duration) Option { return slowThresholdOption(d) }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(e *Engine) {
	if o.reg == nil {
		return
	}
	e.evalDur = o.reg.Histogram("caisp_heuristic_eval_seconds",
		"Threat-score evaluation latency per SDO.")
}

// WithMetrics registers the engine's caisp_heuristic_* families into reg
// (nil disables instrumentation).
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// NewEngine builds an engine with the default registry (the six SDO
// heuristics of Table II).
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		registry: make(map[string]*Heuristic, 6),
		now:      time.Now,
		logger:   slog.Default(),
	}
	for _, h := range DefaultHeuristics() {
		e.registry[h.SDOType] = h
	}
	for _, o := range opts {
		o.apply(e)
	}
	if e.logger == nil {
		e.logger = slog.Default()
	}
	return e
}

// SupportedTypes lists SDO types with a registered heuristic, sorted.
func (e *Engine) SupportedTypes() []string {
	out := make([]string, 0, len(e.registry))
	for typ := range e.registry {
		out = append(out, typ)
	}
	sort.Strings(out)
	return out
}

// Heuristic returns the registered heuristic for an SDO type, or nil.
func (e *Engine) Heuristic(sdoType string) *Heuristic {
	return e.registry[sdoType]
}

// Evaluate computes the threat score of a STIX object using the heuristic
// registered for its type.
func (e *Engine) Evaluate(obj stix.Object) (*Result, error) {
	common := obj.GetCommon()
	h, ok := e.registry[common.Type]
	if !ok {
		return nil, fmt.Errorf("heuristic: no heuristic registered for SDO type %q", common.Type)
	}
	var start time.Time
	if e.evalDur != nil || e.slowAt > 0 {
		start = time.Now()
	}
	ctx := &Context{Now: e.now().UTC(), Infra: e.infra}
	res := evaluate(h, ctx, obj)
	if !start.IsZero() {
		elapsed := time.Since(start)
		if e.evalDur != nil {
			e.evalDur.Observe(elapsed.Seconds())
		}
		if e.slowAt > 0 && elapsed > e.slowAt {
			e.logger.Warn("slow heuristic evaluation",
				"stage", "analyze", "sdo_type", common.Type, "id", common.ID,
				"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
				"threshold_ms", float64(e.slowAt)/float64(time.Millisecond))
		}
	}
	return res, nil
}

// evaluate runs every feature, derives Pi over the present features'
// points, and assembles the score.
func evaluate(h *Heuristic, ctx *Context, obj stix.Object) *Result {
	res := &Result{
		SDOType:     h.SDOType,
		Features:    make([]FeatureResult, 0, len(h.Features)),
		EvaluatedAt: ctx.Now,
	}
	presentPoints := 0
	for _, spec := range h.Features {
		value, present := spec.Evaluate(ctx, obj)
		if value < 0 {
			value = 0
		}
		if value > MaxScore {
			value = MaxScore
		}
		res.Features = append(res.Features, FeatureResult{
			Name:    spec.Name,
			Value:   value,
			Points:  spec.Points,
			Present: present,
		})
		if present {
			presentPoints += spec.Points.Total()
		}
	}
	total := len(h.Features)
	if total == 0 {
		return res
	}
	present := res.PresentCount()
	res.Completeness = float64(present) / float64(total)
	if presentPoints == 0 {
		return res
	}
	for i := range res.Features {
		f := &res.Features[i]
		if !f.Present {
			continue
		}
		f.Weight = float64(f.Points.Total()) / float64(presentPoints)
		res.WeightedSum += f.Value * f.Weight
	}
	res.Score = roundTo(res.Completeness*res.WeightedSum, 4)
	return res
}

// StaticScore reproduces the Table I computation: fixed weights, features
// with value zero counted as empty for completeness but keeping their
// weight in the sum (their contribution is zero anyway).
func StaticScore(values, weights []float64) (float64, error) {
	if len(values) != len(weights) {
		return 0, fmt.Errorf("heuristic: %d values vs %d weights", len(values), len(weights))
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("heuristic: empty feature vector")
	}
	var sum float64
	present := 0
	for i, v := range values {
		if v < 0 || v > MaxScore {
			return 0, fmt.Errorf("heuristic: feature value %g out of [0, %g]", v, MaxScore)
		}
		if weights[i] < 0 {
			return 0, fmt.Errorf("heuristic: negative weight %g", weights[i])
		}
		if v > 0 {
			present++
		}
		sum += v * weights[i]
	}
	cp := float64(present) / float64(len(values))
	return roundTo(cp*sum, 4), nil
}

func roundTo(v float64, decimals int) float64 {
	scale := math.Pow(10, float64(decimals))
	return math.Round(v*scale) / scale
}
