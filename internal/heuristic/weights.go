package heuristic

import (
	"encoding/json"
	"fmt"
)

// WeightsConfig overrides the expert criteria points of features — the
// paper assigns Pi "based on expert knowledge" (§IV-B), which differs per
// organization; this lets deployments tune weights from configuration
// without recompiling. The outer key is the SDO type, the inner key the
// feature name.
type WeightsConfig map[string]map[string]CriteriaPoints

// ParseWeights decodes a weights configuration from JSON of the shape
//
//	{"vulnerability": {"cve": {"relevance": 10, "accuracy": 5,
//	                           "timeliness": 1, "variety": 1}}}
func ParseWeights(data []byte) (WeightsConfig, error) {
	var cfg WeightsConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("heuristic: decode weights: %w", err)
	}
	for sdoType, features := range cfg {
		for name, points := range features {
			if points.Total() <= 0 {
				return nil, fmt.Errorf("heuristic: %s.%s has non-positive point total", sdoType, name)
			}
			if points.Relevance < 0 || points.Accuracy < 0 ||
				points.Timeliness < 0 || points.Variety < 0 {
				return nil, fmt.Errorf("heuristic: %s.%s has negative criteria points", sdoType, name)
			}
		}
	}
	return cfg, nil
}

// WithWeights returns an engine option applying the overrides. Unknown SDO
// types or feature names are reported as an error at engine construction
// via the returned option's application — since options cannot fail, the
// config is validated against the default registry here first.
func WithWeights(cfg WeightsConfig) (Option, error) {
	known := make(map[string]map[string]bool)
	for _, h := range DefaultHeuristics() {
		features := make(map[string]bool, len(h.Features))
		for _, f := range h.Features {
			features[f.Name] = true
		}
		known[h.SDOType] = features
	}
	for sdoType, features := range cfg {
		names, ok := known[sdoType]
		if !ok {
			return nil, fmt.Errorf("heuristic: weights reference unknown SDO type %q", sdoType)
		}
		for name := range features {
			if !names[name] {
				return nil, fmt.Errorf("heuristic: weights reference unknown feature %s.%s", sdoType, name)
			}
		}
	}
	return weightsOption(cfg), nil
}

type weightsOption WeightsConfig

func (o weightsOption) apply(e *Engine) {
	for sdoType, features := range o {
		h, ok := e.registry[sdoType]
		if !ok {
			continue
		}
		// Heuristics in the registry are shared defaults: copy before
		// mutating so other engines keep the stock weights.
		clone := &Heuristic{
			SDOType:  h.SDOType,
			Features: append([]FeatureSpec(nil), h.Features...),
		}
		for i := range clone.Features {
			if points, ok := features[clone.Features[i].Name]; ok {
				clone.Features[i].Points = points
			}
		}
		e.registry[sdoType] = clone
	}
}
