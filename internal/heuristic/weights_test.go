package heuristic

import (
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/stix"
)

func TestParseWeights(t *testing.T) {
	cfg, err := ParseWeights([]byte(`{
	  "vulnerability": {
	    "cve": {"relevance": 20, "accuracy": 5, "timeliness": 1, "variety": 1}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg["vulnerability"]["cve"].Relevance != 20 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := ParseWeights([]byte(`{bad`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseWeights([]byte(`{"vulnerability":{"cve":{"relevance":0,"accuracy":0,"timeliness":0,"variety":0}}}`)); err == nil {
		t.Fatal("zero-point feature accepted")
	}
	if _, err := ParseWeights([]byte(`{"vulnerability":{"cve":{"relevance":-1,"accuracy":5,"timeliness":1,"variety":1}}}`)); err == nil {
		t.Fatal("negative points accepted")
	}
}

func TestWithWeightsValidation(t *testing.T) {
	if _, err := WithWeights(WeightsConfig{"grouping": nil}); err == nil || !strings.Contains(err.Error(), "unknown SDO type") {
		t.Fatalf("unknown type accepted: %v", err)
	}
	if _, err := WithWeights(WeightsConfig{
		"vulnerability": {"bogus_feature": CriteriaPoints{Relevance: 1}},
	}); err == nil || !strings.Contains(err.Error(), "unknown feature") {
		t.Fatalf("unknown feature accepted: %v", err)
	}
}

func TestWithWeightsChangesScore(t *testing.T) {
	// Quadruple the cve feature's relevance: the use-case score must rise
	// (cve scores 4 of 5 while several other features score low).
	opt, err := WithWeights(WeightsConfig{
		"vulnerability": {
			"cve": CriteriaPoints{Relevance: 40, Accuracy: 20, Timeliness: 4, Variety: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stock, _ := useCaseEngine(t)
	stockRes, err := stock.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}

	tuned := NewEngine(opt, WithNow(func() time.Time { return evalTime }))
	tunedRes, err := tuned.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	if tunedRes.Score <= stockRes.Score {
		t.Fatalf("tuned score %v not above stock %v", tunedRes.Score, stockRes.Score)
	}

	// The default registry must be untouched: a fresh engine still
	// reproduces the paper's weights.
	fresh, _ := useCaseEngine(t)
	freshRes, err := fresh.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	if freshRes.Score != stockRes.Score {
		t.Fatalf("default registry mutated: %v vs %v", freshRes.Score, stockRes.Score)
	}
	// Other heuristics are unaffected by the override.
	tool := stix.NewTool("nmap", []string{"scanner"}, evalTime.Add(-time.Hour))
	a, err := tuned.Evaluate(tool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Evaluate(tool)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Fatalf("unrelated heuristic changed: %v vs %v", a.Score, b.Score)
	}
}
