package heuristic

import (
	"strings"

	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/stixpattern"
)

// DefaultHeuristics builds the six heuristics the paper selects from the
// twelve STIX SDOs (§III-B2a): attack-pattern, identity, indicator,
// malware, tool and vulnerability, with the feature lists of Table II.
// Only the vulnerability heuristic's criteria points are given numerically
// by the paper (Table V); the other heuristics use analogous expert
// assignments documented here.
func DefaultHeuristics() []*Heuristic {
	return []*Heuristic{
		AttackPatternHeuristic(),
		IdentityHeuristic(),
		IndicatorHeuristic(),
		MalwareHeuristic(),
		ToolHeuristic(),
		VulnerabilityHeuristic(),
	}
}

// AttackPatternHeuristic covers Table II's attack-pattern row:
// attack_type, detection_tool, modified, created, valid_from,
// external_reference, kill_chain_phases, osint_source, source_type.
func AttackPatternHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeAttackPattern,
		Features: []FeatureSpec{
			{
				Name:        "attack_type",
				Description: "Attack classification carried by the object's labels",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalLabels,
			},
			{
				Name:        "detection_tool",
				Description: "Whether a detection tool listed by the object runs in the infrastructure",
				Points:      CriteriaPoints{Relevance: 4, Accuracy: 5, Timeliness: 1, Variety: 1},
				Evaluate:    evalDetectionTool,
			},
			featModified(), featCreated(), featValidFrom(),
			featExternalReference(), featKillChain(),
			featOSINTSource(), featSourceType(),
		},
	}
}

// IdentityHeuristic covers Table II's identity row: identity_class, name,
// sectors, modified, created, valid_from, location, osint_source,
// source_type.
func IdentityHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeIdentity,
		Features: []FeatureSpec{
			{
				Name:        "identity_class",
				Description: "Conformance of the identity class to the open vocabulary",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalIdentityClass,
			},
			featName(),
			{
				Name:        "sectors",
				Description: "Industry sectors the identity belongs to",
				Points:      CriteriaPoints{Relevance: 3, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalSectors,
			},
			featModified(), featCreated(), featValidFrom(),
			{
				Name:        "location",
				Description: "Geographic context of the identity",
				Points:      CriteriaPoints{Relevance: 2, Accuracy: 1, Timeliness: 1, Variety: 1},
				Evaluate:    evalExtraPresence("x_caisp_location", 3),
			},
			featOSINTSource(), featSourceType(),
		},
	}
}

// IndicatorHeuristic covers Table II's indicator row: indicator_type,
// modified, created, valid_from, external_reference, kill_chain_phases,
// pattern, osint_source, source_type.
func IndicatorHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeIndicator,
		Features: []FeatureSpec{
			{
				Name:        "indicator_type",
				Description: "Conformance of the indicator labels to the open vocabulary",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalIndicatorType,
			},
			featModified(), featCreated(), featValidFrom(),
			featExternalReference(), featKillChain(),
			{
				Name:        "pattern",
				Description: "Pattern quality: parseable, and whether it matches infrastructure observations",
				Points:      CriteriaPoints{Relevance: 6, Accuracy: 10, Timeliness: 1, Variety: 2},
				Evaluate:    evalPattern,
			},
			featOSINTSource(), featSourceType(),
		},
	}
}

// MalwareHeuristic covers Table II's malware row: category, status,
// operating_system, modified, created, valid_from, external_reference,
// kill_chain_phases, osint_source, source_type.
func MalwareHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeMalware,
		Features: []FeatureSpec{
			{
				Name:        "category",
				Description: "Malware category carried by the object's labels",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalMalwareCategory,
			},
			{
				Name:        "status",
				Description: "Whether the malware campaign is reported active",
				Points:      CriteriaPoints{Relevance: 3, Accuracy: 2, Timeliness: 2, Variety: 1},
				Evaluate:    evalMalwareStatus,
			},
			{
				Name:        "operating_system",
				Description: "Targeted operating system",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 1, Timeliness: 1, Variety: 1},
				Evaluate:    evalOperatingSystem,
			},
			featModified(), featCreated(), featValidFrom(),
			featExternalReference(), featKillChain(),
			featOSINTSource(), featSourceType(),
		},
	}
}

// ToolHeuristic covers Table II's tool row: tool_type, name, modified,
// created, valid_from, kill_chain_phases, osint_source, source_type.
func ToolHeuristic() *Heuristic {
	return &Heuristic{
		SDOType: stix.TypeTool,
		Features: []FeatureSpec{
			{
				Name:        "tool_type",
				Description: "Tool classification carried by the object's labels",
				Points:      CriteriaPoints{Relevance: 5, Accuracy: 2, Timeliness: 1, Variety: 1},
				Evaluate:    evalLabels,
			},
			featName(),
			featModified(), featCreated(), featValidFrom(),
			featKillChain(),
			featOSINTSource(), featSourceType(),
		},
	}
}

// --- shared feature constructors ----------------------------------------

func featModified() FeatureSpec {
	return FeatureSpec{
		Name:        "modified",
		Description: "Recency of last modification",
		Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1},
		Evaluate:    evalModifiedRecency,
	}
}

func featCreated() FeatureSpec {
	return FeatureSpec{
		Name:        "created",
		Description: "Recency of creation",
		Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1},
		Evaluate: func(ctx *Context, obj stix.Object) (float64, bool) {
			created := obj.GetCommon().Created.Time
			if created.IsZero() {
				return 0, false
			}
			return recencyScore(ctx.Now.Sub(created)), true
		},
	}
}

func featValidFrom() FeatureSpec {
	return FeatureSpec{
		Name:        "valid_from",
		Description: "From when the object is considered valid",
		Points:      CriteriaPoints{Relevance: 1, Accuracy: 1, Timeliness: 1, Variety: 1},
		Evaluate:    evalValidFrom,
	}
}

func featExternalReference() FeatureSpec {
	return FeatureSpec{
		Name:        "external_reference",
		Description: "External references checked against the known-source inventory",
		Points:      CriteriaPoints{Relevance: 4, Accuracy: 6, Timeliness: 1, Variety: 3},
		Evaluate:    evalExternalReferences,
	}
}

func featKillChain() FeatureSpec {
	return FeatureSpec{
		Name:        "kill_chain_phases",
		Description: "Kill chain placement of the object",
		Points:      CriteriaPoints{Relevance: 3, Accuracy: 1, Timeliness: 1, Variety: 1},
		Evaluate:    evalKillChain,
	}
}

func featOSINTSource() FeatureSpec {
	return FeatureSpec{
		Name:        "osint_source",
		Description: "Source diversity of the report",
		Points:      CriteriaPoints{Relevance: 3, Accuracy: 1, Timeliness: 1, Variety: 3},
		Evaluate:    evalSourceDiversity,
	}
}

func featSourceType() FeatureSpec {
	return FeatureSpec{
		Name:        "source_type",
		Description: "Kind of the producing source (infrastructure-confirmed data ranks higher)",
		Points:      CriteriaPoints{Relevance: 2, Accuracy: 1, Timeliness: 1, Variety: 2},
		Evaluate: func(_ *Context, obj stix.Object) (float64, bool) {
			srcType, ok := obj.GetCommon().ExtraString(PropSourceType)
			if !ok || srcType == "" {
				return 0, false
			}
			if strings.EqualFold(srcType, "infrastructure") {
				return 5, true
			}
			return 3, true
		},
	}
}

func featName() FeatureSpec {
	return FeatureSpec{
		Name:        "name",
		Description: "Whether the object carries a usable name",
		Points:      CriteriaPoints{Relevance: 2, Accuracy: 1, Timeliness: 1, Variety: 1},
		Evaluate: func(_ *Context, obj stix.Object) (float64, bool) {
			if objectName(obj) == "" {
				return 0, false
			}
			return 2, true
		},
	}
}

// --- shared evaluators ---------------------------------------------------

func evalLabels(_ *Context, obj stix.Object) (float64, bool) {
	labels := obj.GetCommon().Labels
	switch {
	case len(labels) == 0:
		return 0, false
	case len(labels) >= 2:
		return 5, true
	default:
		return 3, true
	}
}

func evalDetectionTool(ctx *Context, obj stix.Object) (float64, bool) {
	tool, ok := obj.GetCommon().ExtraString("x_caisp_detection_tool")
	if !ok || tool == "" {
		return 0, false
	}
	if ctx.Infra != nil && ctx.Infra.Inventory().Match([]string{tool}).Matched() {
		return 5, true
	}
	return 2, true
}

var identityClassScores = map[string]float64{
	"organization": 5, "group": 4, "class": 3, "individual": 3, "unknown": 1,
}

func evalIdentityClass(_ *Context, obj stix.Object) (float64, bool) {
	ident, ok := obj.(*stix.Identity)
	if !ok || ident.IdentityClass == "" {
		return 0, false
	}
	if score, known := identityClassScores[strings.ToLower(ident.IdentityClass)]; known {
		return score, true
	}
	return 1, true
}

func evalSectors(_ *Context, obj stix.Object) (float64, bool) {
	ident, ok := obj.(*stix.Identity)
	if !ok || len(ident.Sectors) == 0 {
		return 0, false
	}
	if len(ident.Sectors) >= 2 {
		return 4, true
	}
	return 3, true
}

var indicatorLabelVocab = map[string]bool{
	"anomalous-activity": true, "anonymization": true, "benign": true,
	"compromised": true, "malicious-activity": true, "attribution": true,
}

func evalIndicatorType(_ *Context, obj stix.Object) (float64, bool) {
	labels := obj.GetCommon().Labels
	if len(labels) == 0 {
		return 0, false
	}
	for _, l := range labels {
		if indicatorLabelVocab[strings.ToLower(l)] {
			return 5, true
		}
	}
	return 2, true
}

// evalPattern parses the indicator pattern and, when infrastructure
// observations exist, checks for a live match: matching patterns are the
// most actionable evidence (5); parseable ones (3); malformed ones (1).
func evalPattern(ctx *Context, obj stix.Object) (float64, bool) {
	ind, ok := obj.(*stix.Indicator)
	if !ok || ind.Pattern == "" {
		return 0, false
	}
	p, err := stixpattern.Parse(ind.Pattern)
	if err != nil {
		return 1, true
	}
	if ctx.Infra != nil {
		if matched, err := p.Match(ctx.Infra.Observations()); err == nil && matched {
			return 5, true
		}
	}
	return 3, true
}

var malwareCategoryVocab = map[string]bool{
	"adware": true, "backdoor": true, "bot": true, "ddos": true,
	"dropper": true, "exploit-kit": true, "keylogger": true,
	"ransomware": true, "remote-access-trojan": true, "rootkit": true,
	"screen-capture": true, "spyware": true, "trojan": true, "virus": true,
	"worm": true,
}

func evalMalwareCategory(_ *Context, obj stix.Object) (float64, bool) {
	labels := obj.GetCommon().Labels
	if len(labels) == 0 {
		return 0, false
	}
	for _, l := range labels {
		if malwareCategoryVocab[strings.ToLower(l)] {
			return 5, true
		}
	}
	return 2, true
}

func evalMalwareStatus(_ *Context, obj stix.Object) (float64, bool) {
	status, ok := obj.GetCommon().ExtraString("x_caisp_status")
	if !ok || status == "" {
		return 0, false
	}
	if strings.EqualFold(status, "active") {
		return 5, true
	}
	return 1, true
}

func evalKillChain(_ *Context, obj stix.Object) (float64, bool) {
	var phases []stix.KillChainPhase
	switch o := obj.(type) {
	case *stix.AttackPattern:
		phases = o.KillChainPhases
	case *stix.Indicator:
		phases = o.KillChainPhases
	case *stix.Malware:
		phases = o.KillChainPhases
	case *stix.Tool:
		phases = o.KillChainPhases
	}
	switch {
	case len(phases) == 0:
		return 0, false
	case len(phases) >= 2:
		return 5, true
	default:
		return 3, true
	}
}

// evalExtraPresence scores a custom property's mere presence.
func evalExtraPresence(prop string, score float64) Evaluator {
	return func(_ *Context, obj stix.Object) (float64, bool) {
		if v, ok := obj.GetCommon().ExtraString(prop); ok && v != "" {
			return score, true
		}
		return 0, false
	}
}
