package heuristic

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/stix"
)

// TestTableI reproduces the paper's Table I: three heuristics of five
// features with fixed weights P = (0.10, 0.25, 0.40, 0.15, 0.10).
func TestTableI(t *testing.T) {
	weights := []float64{0.10, 0.25, 0.40, 0.15, 0.10}
	tests := []struct {
		name   string
		values []float64
		want   float64
	}{
		{name: "H1", values: []float64{3, 4, 3, 1, 5}, want: 3.15},
		{name: "H2", values: []float64{5, 2, 2, 4, 0}, want: 1.92},
		{name: "H3", values: []float64{1, 1, 2, 3, 3}, want: 1.90},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := StaticScore(tt.values, weights)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("TS = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStaticScoreValidation(t *testing.T) {
	if _, err := StaticScore([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := StaticScore(nil, nil); err == nil {
		t.Fatal("empty vectors accepted")
	}
	if _, err := StaticScore([]float64{6}, []float64{1}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := StaticScore([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := StaticScore([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestStaticScoreBoundsQuick(t *testing.T) {
	// Property: for values in [0,5] and weights summing to 1, 0 ≤ TS ≤ 5.
	cfg := &quick.Config{
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(10)
			values := make([]float64, n)
			weights := make([]float64, n)
			var sum float64
			for i := range values {
				values[i] = float64(r.Intn(6))
				weights[i] = r.Float64()
				sum += weights[i]
			}
			if sum > 0 {
				for i := range weights {
					weights[i] /= sum
				}
			}
			args[0] = reflect.ValueOf(values)
			args[1] = reflect.ValueOf(weights)
		},
	}
	f := func(values, weights []float64) bool {
		ts, err := StaticScore(values, weights)
		return err == nil && ts >= 0 && ts <= MaxScore
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTableII checks the six heuristics and their Table II feature lists.
func TestTableII(t *testing.T) {
	e := NewEngine()
	wantTypes := []string{
		stix.TypeAttackPattern, stix.TypeIdentity, stix.TypeIndicator,
		stix.TypeMalware, stix.TypeTool, stix.TypeVulnerability,
	}
	if got := e.SupportedTypes(); !reflect.DeepEqual(got, wantTypes) {
		t.Fatalf("SupportedTypes = %v, want %v", got, wantTypes)
	}
	wantFeatures := map[string][]string{
		stix.TypeAttackPattern: {
			"attack_type", "detection_tool", "modified", "created",
			"valid_from", "external_reference", "kill_chain_phases",
			"osint_source", "source_type",
		},
		stix.TypeIdentity: {
			"identity_class", "name", "sectors", "modified", "created",
			"valid_from", "location", "osint_source", "source_type",
		},
		stix.TypeIndicator: {
			"indicator_type", "modified", "created", "valid_from",
			"external_reference", "kill_chain_phases", "pattern",
			"osint_source", "source_type",
		},
		stix.TypeMalware: {
			"category", "status", "operating_system", "modified", "created",
			"valid_from", "external_reference", "kill_chain_phases",
			"osint_source", "source_type",
		},
		stix.TypeTool: {
			"tool_type", "name", "modified", "created", "valid_from",
			"kill_chain_phases", "osint_source", "source_type",
		},
		stix.TypeVulnerability: {
			"operating_system", "source_diversity", "application",
			"vuln_app_in_alarm", "modified", "valid_from", "valid_until",
			"external_references", "cve",
		},
	}
	for typ, want := range wantFeatures {
		h := e.Heuristic(typ)
		if h == nil {
			t.Fatalf("heuristic for %s missing", typ)
		}
		var got []string
		for _, f := range h.Features {
			got = append(got, f.Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s features = %v, want %v", typ, got, want)
		}
	}
}

// evalTime is the paper's implicit evaluation instant: the IoC (created
// 2017-09-13) is in the "last_year" recency bucket.
var evalTime = time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

// useCaseIoC builds the §IV CVE-2017-9805 vulnerability IoC.
func useCaseIoC() *stix.Vulnerability {
	created := time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC)
	v := stix.NewVulnerability(
		"CVE-2017-9805",
		"Apache Struts REST plugin XStream RCE via crafted POST body",
		created,
	)
	v.ExternalReferences = []stix.ExternalReference{
		{SourceName: "capec", ExternalID: "CAPEC-248"},
		{SourceName: "cve", ExternalID: "CVE-2017-9805"},
	}
	v.SetExtra(PropOS, "debian")
	v.SetExtra(PropProducts, "apache struts,apache")
	v.SetExtra(PropCVSSVector, "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H")
	v.SetExtra(PropSourceType, "osint")
	return v
}

func useCaseEngine(t *testing.T) (*Engine, *infra.Collector) {
	t.Helper()
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(
		WithInfrastructure(collector),
		WithNow(func() time.Time { return evalTime }),
	)
	return e, collector
}

// TestTableV reproduces the paper's Table V / §IV-B threat score for the
// remote-code-execution use case.
func TestTableV(t *testing.T) {
	e, _ := useCaseEngine(t)
	res, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}

	// Feature values Xi as derived in §IV-B.
	wantValues := map[string]struct {
		value   float64
		present bool
	}{
		"operating_system":    {value: 3, present: true},  // debian
		"source_diversity":    {value: 1, present: true},  // OSINT source
		"application":         {value: 2, present: true},  // apache present on node4
		"vuln_app_in_alarm":   {value: 1, present: true},  // no related alarms
		"modified":            {value: 2, present: true},  // last year
		"valid_from":          {value: 1, present: true},  // last year
		"valid_until":         {value: 0, present: false}, // missing → discarded
		"external_references": {value: 5, present: true},  // CAPEC + CVE known
		"cve":                 {value: 4, present: true},  // CVSS 8.1 = high
	}
	for _, f := range res.Features {
		want, ok := wantValues[f.Name]
		if !ok {
			t.Fatalf("unexpected feature %q", f.Name)
		}
		if f.Value != want.value || f.Present != want.present {
			t.Errorf("feature %s = (%v, %v), want (%v, %v)",
				f.Name, f.Value, f.Present, want.value, want.present)
		}
	}

	// Completeness Cp = 8/9.
	if math.Abs(res.Completeness-8.0/9.0) > 1e-9 {
		t.Fatalf("Cp = %v, want 8/9", res.Completeness)
	}

	// Weights Pi = points/84 (Table V's Pi column).
	wantWeights := map[string]float64{
		"operating_system":    8.0 / 84,
		"source_diversity":    8.0 / 84,
		"application":         12.0 / 84,
		"vuln_app_in_alarm":   8.0 / 84,
		"modified":            4.0 / 84,
		"valid_from":          4.0 / 84,
		"valid_until":         0,
		"external_references": 23.0 / 84,
		"cve":                 17.0 / 84,
	}
	for _, f := range res.Features {
		if math.Abs(f.Weight-wantWeights[f.Name]) > 1e-9 {
			t.Errorf("weight of %s = %v, want %v", f.Name, f.Weight, wantWeights[f.Name])
		}
	}

	// Σ Xi·Pi = 259/84 and TS = 8/9 × 259/84 = 2.7407 (the paper prints
	// 2.7406 from its 4-decimal-rounded Pi values).
	if math.Abs(res.WeightedSum-259.0/84.0) > 1e-9 {
		t.Fatalf("Σ Xi·Pi = %v, want 259/84", res.WeightedSum)
	}
	if res.Score != 2.7407 {
		t.Fatalf("TS = %v, want 2.7407", res.Score)
	}
	if res.Priority() != "medium" {
		t.Fatalf("priority = %q, want medium (paper: average position)", res.Priority())
	}
}

// TestTableVWithPaperRoundedWeights checks that using the paper's printed
// 4-decimal Pi values yields exactly its printed 2.7406.
func TestTableVWithPaperRoundedWeights(t *testing.T) {
	xi := []float64{3, 1, 2, 1, 2, 1, 5, 4}
	pi := []float64{0.0952, 0.0952, 0.1429, 0.0952, 0.0476, 0.0476, 0.2738, 0.2024}
	var sum float64
	for i := range xi {
		sum += xi[i] * pi[i]
	}
	ts := math.Round(8.0/9.0*sum*10000) / 10000
	if ts != 2.7406 {
		t.Fatalf("TS with rounded Pi = %v, want 2.7406", ts)
	}
}

func TestEvaluateUnknownType(t *testing.T) {
	e := NewEngine()
	rep := &stix.Report{Common: stix.Common{Type: stix.TypeReport, ID: stix.NewID(stix.TypeReport)}}
	if _, err := e.Evaluate(rep); err == nil {
		t.Fatal("report evaluated without a heuristic")
	}
}

func TestScoreBoundsAllHeuristicsQuick(t *testing.T) {
	// Property: whatever custom properties an SDO carries, TS ∈ [0, 5].
	e, _ := useCaseEngine(t)
	r := rand.New(rand.NewSource(7))
	builders := []func(time.Time) stix.Object{
		func(ts time.Time) stix.Object { return stix.NewVulnerability("CVE-2020-1234", "x", ts) },
		func(ts time.Time) stix.Object {
			return stix.NewIndicator("[domain-name:value = 'a.example']", []string{"malicious-activity"}, ts)
		},
		func(ts time.Time) stix.Object { return stix.NewMalware("m", []string{"trojan"}, ts) },
		func(ts time.Time) stix.Object { return stix.NewAttackPattern("ap", ts) },
		func(ts time.Time) stix.Object { return stix.NewIdentity("org", "organization", ts) },
		func(ts time.Time) stix.Object { return stix.NewTool("nmap", []string{"scanner"}, ts) },
	}
	for i := 0; i < 200; i++ {
		ts := evalTime.Add(-time.Duration(r.Intn(1000)) * 24 * time.Hour)
		obj := builders[r.Intn(len(builders))](ts)
		if r.Intn(2) == 0 {
			obj.GetCommon().SetExtra(PropOS, []string{"windows", "debian", "beos", ""}[r.Intn(4)])
		}
		if r.Intn(2) == 0 {
			obj.GetCommon().SetExtra(PropProducts, []string{"apache", "iis", "apache,php", ""}[r.Intn(4)])
		}
		if r.Intn(2) == 0 {
			obj.GetCommon().SetExtra(PropCVSSVector, "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
		}
		if r.Intn(2) == 0 {
			obj.GetCommon().SetExtra(PropSourceType, []string{"osint", "infrastructure", "partner"}[r.Intn(3)])
		}
		res, err := e.Evaluate(obj)
		if err != nil {
			t.Fatal(err)
		}
		if res.Score < 0 || res.Score > MaxScore {
			t.Fatalf("TS out of range: %v for %T", res.Score, obj)
		}
		if res.Completeness < 0 || res.Completeness > 1 {
			t.Fatalf("Cp out of range: %v", res.Completeness)
		}
	}
}

func TestCompletenessDropsWithMissingInfo(t *testing.T) {
	e, _ := useCaseEngine(t)
	full, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	bare := stix.NewVulnerability("no-cve-name", "", time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC))
	bareRes, err := e.Evaluate(bare)
	if err != nil {
		t.Fatal(err)
	}
	if bareRes.Completeness >= full.Completeness {
		t.Fatalf("bare Cp %v not below full Cp %v", bareRes.Completeness, full.Completeness)
	}
	if bareRes.Score >= full.Score {
		t.Fatalf("bare TS %v not below full TS %v", bareRes.Score, full.Score)
	}
}

func TestInfrastructureSightingRaisesSourceDiversity(t *testing.T) {
	e, collector := useCaseEngine(t)
	if _, err := collector.AddInternalIoC("CVE-2017-9805", "vulnerability-exploitation", "vuln-scanner", evalTime); err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Features {
		if f.Name == "source_diversity" && f.Value != 3 {
			t.Fatalf("source_diversity = %v, want 3 after infra sighting", f.Value)
		}
	}
}

func TestAlarmRaisesVulnAppInAlarm(t *testing.T) {
	e, collector := useCaseEngine(t)
	if _, err := collector.AddAlarm(infra.Alarm{
		NodeID: "node4", Severity: infra.SeverityHigh,
		Application: "apache", Description: "struts exploitation attempt",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Features {
		if f.Name == "vuln_app_in_alarm" && f.Value != 2 {
			t.Fatalf("vuln_app_in_alarm = %v, want 2 with matching alarm", f.Value)
		}
	}
}

func TestValidUntilFeature(t *testing.T) {
	e, _ := useCaseEngine(t)
	v := useCaseIoC()
	v.SetExtra(PropValidUntil, evalTime.Add(30*24*time.Hour).Format(time.RFC3339))
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completeness-1.0) > 1e-9 {
		t.Fatalf("Cp = %v, want 1 with valid_until present", res.Completeness)
	}
	for _, f := range res.Features {
		if f.Name == "valid_until" && (f.Value != 5 || !f.Present) {
			t.Fatalf("valid_until = %+v, want value 5 present", f)
		}
	}
	// Expired.
	v2 := useCaseIoC()
	v2.SetExtra(PropValidUntil, evalTime.Add(-24*time.Hour).Format(time.RFC3339))
	res2, err := e.Evaluate(v2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res2.Features {
		if f.Name == "valid_until" && f.Value != 1 {
			t.Fatalf("expired valid_until = %v, want 1", f.Value)
		}
	}
}

func TestOperatingSystemBuckets(t *testing.T) {
	e, _ := useCaseEngine(t)
	tests := []struct {
		os   string
		want float64
	}{
		{os: "windows", want: 5},
		{os: "debian", want: 3},
		{os: "centos", want: 3},
		{os: "Ubuntu", want: 3},
		{os: "beos", want: 1},
	}
	for _, tt := range tests {
		v := useCaseIoC()
		v.SetExtra(PropOS, tt.os)
		res, err := e.Evaluate(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Features {
			if f.Name == "operating_system" && f.Value != tt.want {
				t.Errorf("os %q = %v, want %v", tt.os, f.Value, tt.want)
			}
		}
	}
}

func TestOSExtractedFromDescription(t *testing.T) {
	e, _ := useCaseEngine(t)
	v := stix.NewVulnerability("CVE-2020-0001", "affects Windows Server installations", evalTime)
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Features {
		if f.Name == "operating_system" && (f.Value != 5 || !f.Present) {
			t.Fatalf("description OS extraction = %+v", f)
		}
	}
}

func TestCVEBands(t *testing.T) {
	e, _ := useCaseEngine(t)
	tests := []struct {
		vector string
		want   float64
	}{
		{vector: "", want: 1}, // CVE present, no CVSS
		{vector: "CVSS:3.1/AV:L/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", want: 2}, // low
		{vector: "CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:L/I:L/A:N", want: 3}, // medium
		{vector: "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", want: 4}, // high 8.1
		{vector: "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", want: 5}, // critical
		{vector: "AV:N/AC:L/Au:N/C:P/I:P/A:P", want: 4},                   // v2 7.5 high
	}
	for _, tt := range tests {
		v := useCaseIoC()
		if tt.vector == "" {
			delete(v.Extra, PropCVSSVector)
		} else {
			v.SetExtra(PropCVSSVector, tt.vector)
		}
		res, err := e.Evaluate(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Features {
			if f.Name == "cve" && f.Value != tt.want {
				t.Errorf("vector %q → cve = %v, want %v", tt.vector, f.Value, tt.want)
			}
		}
	}
}

func TestIndicatorPatternFeature(t *testing.T) {
	e, collector := useCaseEngine(t)
	if _, err := collector.AddInternalIoC("203.0.113.7", "scanner", "nids", evalTime); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		pattern string
		want    float64
	}{
		{name: "matches infra", pattern: "[ipv4-addr:value = '203.0.113.7']", want: 5},
		{name: "parseable no match", pattern: "[domain-name:value = 'quiet.example']", want: 3},
		{name: "malformed", pattern: "[[broken", want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ind := stix.NewIndicator(tt.pattern, []string{"malicious-activity"}, evalTime)
			res, err := e.Evaluate(ind)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Features {
				if f.Name == "pattern" && f.Value != tt.want {
					t.Fatalf("pattern feature = %v, want %v", f.Value, tt.want)
				}
			}
		})
	}
}

func TestPriorityBands(t *testing.T) {
	tests := []struct {
		score float64
		want  string
	}{
		{score: 0, want: "low"},
		{score: 1.66, want: "low"},
		{score: 1.7, want: "medium"},
		{score: 2.74, want: "medium"},
		{score: 3.34, want: "high"},
		{score: 5, want: "high"},
	}
	for _, tt := range tests {
		r := Result{Score: tt.score}
		if got := r.Priority(); got != tt.want {
			t.Errorf("Priority(%v) = %q, want %q", tt.score, got, tt.want)
		}
	}
}

func TestEnrichAndReadBack(t *testing.T) {
	e, _ := useCaseEngine(t)
	v := useCaseIoC()
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	Enrich(v, res)
	score, ok := ThreatScoreOf(v)
	if !ok || score != res.Score {
		t.Fatalf("ThreatScoreOf = %v, %v", score, ok)
	}
	if prio, ok := v.ExtraString(PropPriority); !ok || prio != "medium" {
		t.Fatalf("priority prop = %q, %v", prio, ok)
	}
	// The enrichment must survive a STIX round trip.
	data, err := stix.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	back, err := stix.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := ThreatScoreOf(back); !ok || got != res.Score {
		t.Fatalf("score lost in round trip: %v, %v", got, ok)
	}
}

func TestReduceMatchesNode4(t *testing.T) {
	e, collector := useCaseEngine(t)
	v := useCaseIoC()
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	Enrich(v, res)
	r, err := Reduce(v, res, collector, evalTime)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("rIoC not generated for matching IoC")
	}
	if len(r.NodeIDs) != 1 || r.NodeIDs[0] != "node4" {
		t.Fatalf("NodeIDs = %v, want [node4]", r.NodeIDs)
	}
	if r.AllNodes {
		t.Fatal("AllNodes set for specific match")
	}
	if r.CVE != "CVE-2017-9805" || r.ThreatScore != res.Score {
		t.Fatalf("rIoC fields = %+v", r)
	}
	if r.EIoCRef != v.ID {
		t.Fatalf("EIoCRef = %q, want %q", r.EIoCRef, v.ID)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceCommonKeywordMatchesAllNodes(t *testing.T) {
	e, collector := useCaseEngine(t)
	v := useCaseIoC()
	v.SetExtra(PropProducts, "linux")
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(v, res, collector, evalTime)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || !r.AllNodes {
		t.Fatalf("common keyword rIoC = %+v, want AllNodes", r)
	}
	if len(r.NodeIDs) != 4 {
		t.Fatalf("NodeIDs = %v, want all 4", r.NodeIDs)
	}
}

func TestReduceNoMatchSuppressesRIoC(t *testing.T) {
	e, collector := useCaseEngine(t)
	v := useCaseIoC()
	v.SetExtra(PropProducts, "microsoft iis")
	res, err := e.Evaluate(v)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reduce(v, res, collector, evalTime)
	if err != nil {
		t.Fatal(err)
	}
	if r != nil {
		t.Fatalf("rIoC generated despite no match: %+v", r)
	}
	if _, err := Reduce(v, res, nil, evalTime); err == nil {
		t.Fatal("nil collector accepted")
	}
}

func TestWithHeuristicOverride(t *testing.T) {
	custom := &Heuristic{
		SDOType: stix.TypeVulnerability,
		Features: []FeatureSpec{{
			Name:   "constant",
			Points: CriteriaPoints{Relevance: 1},
			Evaluate: func(*Context, stix.Object) (float64, bool) {
				return 5, true
			},
		}},
	}
	e := NewEngine(WithHeuristic(custom), WithNow(func() time.Time { return evalTime }))
	res, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 5 {
		t.Fatalf("custom heuristic TS = %v, want 5", res.Score)
	}
}

func TestAllFeaturesEmptyYieldsZero(t *testing.T) {
	empty := &Heuristic{
		SDOType: stix.TypeVulnerability,
		Features: []FeatureSpec{{
			Name:   "never",
			Points: CriteriaPoints{Relevance: 1},
			Evaluate: func(*Context, stix.Object) (float64, bool) {
				return 0, false
			},
		}},
	}
	e := NewEngine(WithHeuristic(empty))
	res, err := e.Evaluate(useCaseIoC())
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 0 || res.Completeness != 0 {
		t.Fatalf("empty evaluation = %+v", res)
	}
}
