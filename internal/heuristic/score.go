package heuristic

import (
	"strconv"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
)

// Score write-back attributes. The analyzer persists the threat score
// into the stored eIoC as a comment attribute ("threat-score:0.6250",
// §IV-A); the indicator-lifecycle engine maintains the time-decayed
// counterpart ("decayed-score:…") beside it. Both are upserted in
// place so re-scoring never accumulates duplicate attributes, and
// SetDecayedScore deliberately leaves the event Timestamp alone — a
// decay edit is derived local state, not a revision, so it must not
// ripple through mesh conflict resolution or change feeds as an edit
// other nodes have to import.

// ScorePrefix marks the analyzer's base-score comment attribute.
const ScorePrefix = "threat-score:"

// DecayedScorePrefix marks the lifecycle engine's decayed-score
// comment attribute.
const DecayedScorePrefix = "decayed-score:"

// FormatScore renders a score write-back value, fixed at the 4
// decimals the analyzer has always written.
func FormatScore(prefix string, score float64) string {
	return prefix + strconv.FormatFloat(score, 'f', 4, 64)
}

func scoreOf(me *misp.Event, prefix string) (float64, bool) {
	for i := range me.Attributes {
		a := &me.Attributes[i]
		if a.Type != "comment" {
			continue
		}
		if rest, ok := strings.CutPrefix(a.Value, prefix); ok {
			if f, err := strconv.ParseFloat(rest, 64); err == nil {
				return f, true
			}
		}
	}
	return 0, false
}

// BaseScoreOf recovers the analyzer's written-back threat score.
func BaseScoreOf(me *misp.Event) (float64, bool) { return scoreOf(me, ScorePrefix) }

// DecayedScoreOf recovers the lifecycle engine's decayed score.
func DecayedScoreOf(me *misp.Event) (float64, bool) { return scoreOf(me, DecayedScorePrefix) }

// setScore upserts the prefix-marked comment attribute, returning
// whether the stored value actually changed.
func setScore(me *misp.Event, prefix string, score float64, at time.Time) bool {
	want := FormatScore(prefix, score)
	for i := range me.Attributes {
		a := &me.Attributes[i]
		if a.Type != "comment" || !strings.HasPrefix(a.Value, prefix) {
			continue
		}
		if a.Value == want {
			return false
		}
		a.Value = want
		a.Timestamp = misp.UT(at)
		return true
	}
	me.AddAttribute("comment", "Other", want, at)
	return true
}

// SetBaseScore upserts the analyzer's threat-score attribute.
func SetBaseScore(me *misp.Event, score float64, at time.Time) bool {
	return setScore(me, ScorePrefix, score, at)
}

// SetDecayedScore upserts the decayed-score attribute. The event
// Timestamp is not bumped (see the package comment above); callers
// re-store the event to land the edit.
func SetDecayedScore(me *misp.Event, score float64, at time.Time) bool {
	return setScore(me, DecayedScorePrefix, score, at)
}
