package dashboard

// indexHTML is the single-page dashboard: it renders the topology with
// alarm circles and rIoC stars per node (Fig. 2), a node detail pane
// (Fig. 3), an rIoC detail list with per-criterion drill-down (Fig. 4 plus
// the §VI future-work breakdown), and a streaming timeline (§II-B),
// refreshed live over the WebSocket.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>CAISP Dashboard</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 1.5rem; background: #10141a; color: #e6e6e6; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
  .nodes { display: flex; flex-wrap: wrap; gap: 1rem; }
  .node { border: 1px solid #3a4352; border-radius: 8px; padding: .8rem 1rem; min-width: 11rem;
          position: relative; background: #1a2230; cursor: pointer; }
  .node .badges { display: flex; justify-content: space-between; margin-bottom: .4rem; }
  .circle { border-radius: 50%; padding: .05rem .45rem; font-size: .8rem; font-weight: 600; }
  .green { background: #1d7a3d; } .yellow { background: #a07f1a; } .red { background: #a02626; }
  .star { color: #ffd75e; font-weight: 600; }
  table { border-collapse: collapse; width: 100%; margin-top: .5rem; }
  th, td { border-bottom: 1px solid #2b3442; text-align: left; padding: .3rem .5rem; font-size: .85rem; }
  .score { font-weight: 700; }
  tr.rioc { cursor: pointer; }
  #detail, #breakdown { white-space: pre-wrap; background: #1a2230; padding: .8rem;
                        border-radius: 8px; font-size: .85rem; }
  #timeline { display: flex; align-items: flex-end; gap: 2px; height: 80px;
              background: #1a2230; padding: .5rem; border-radius: 8px; }
  #timeline .bar { width: 14px; display: flex; flex-direction: column-reverse; }
  #timeline .seg-r { background: #ffd75e; }
  #timeline .seg-a { background: #a02626; }
</style>
</head>
<body>
<h1>Context-Aware OSINT Platform — Dashboard</h1>
<div class="nodes" id="nodes"></div>
<h2>Activity timeline (per minute: <span class="star">rIoCs</span> / <span style="color:#e06666">alarms</span>)</h2>
<div id="timeline"></div>
<h2>Node detail</h2>
<div id="detail">select a node…</div>
<h2>Reduced IoCs <small>(click a row for the per-criterion breakdown)</small></h2>
<table id="riocs"><thead>
<tr><th>CVE</th><th>Description</th><th>Affected</th><th class="score">Threat score</th><th>Priority</th></tr>
</thead><tbody></tbody></table>
<h2>Score breakdown</h2>
<div id="breakdown">select an rIoC…</div>
<script>
async function refresh() {
  const topo = await (await fetch('/api/topology')).json();
  const wrap = document.getElementById('nodes');
  wrap.innerHTML = '';
  for (const n of topo.nodes) {
    const el = document.createElement('div');
    el.className = 'node';
    el.innerHTML =
      '<div class="badges">' +
      '<span>' +
      '<span class="circle green">' + n.alarms.green + '</span> ' +
      '<span class="circle yellow">' + n.alarms.yellow + '</span> ' +
      '<span class="circle red">' + n.alarms.red + '</span>' +
      '</span>' +
      '<span class="star">★ ' + n.riocs + '</span></div>' +
      '<strong>' + n.name + '</strong><br><small>' + n.id +
      ' · ' + (n.networks || []).join('/') + '</small>';
    el.onclick = () => showNode(n.id);
    wrap.appendChild(el);
  }
  const riocs = await (await fetch('/api/riocs')).json();
  const tbody = document.querySelector('#riocs tbody');
  tbody.innerHTML = '';
  for (const r of riocs || []) {
    const tr = document.createElement('tr');
    tr.className = 'rioc';
    const affected = r.all_nodes ? 'all nodes' : (r.node_ids || []).join(', ');
    tr.innerHTML = '<td>' + (r.cve || r.title) + '</td><td>' + (r.description || '') +
      '</td><td>' + affected + '</td><td class="score">' + r.threat_score.toFixed(4) +
      '</td><td>' + r.priority + '</td>';
    tr.onclick = () => showBreakdown(r.id);
    tbody.appendChild(tr);
  }
  renderTimeline(await (await fetch('/api/timeline')).json());
}
function renderTimeline(buckets) {
  const wrap = document.getElementById('timeline');
  wrap.innerHTML = '';
  let max = 1;
  for (const b of buckets || []) max = Math.max(max, b.riocs + b.alarms);
  for (const b of buckets || []) {
    const bar = document.createElement('div');
    bar.className = 'bar';
    bar.title = b.minute + ': ' + b.riocs + ' rIoCs, ' + b.alarms + ' alarms';
    const segR = document.createElement('div');
    segR.className = 'seg-r';
    segR.style.height = (b.riocs / max * 70) + 'px';
    const segA = document.createElement('div');
    segA.className = 'seg-a';
    segA.style.height = (b.alarms / max * 70) + 'px';
    bar.appendChild(segR);
    bar.appendChild(segA);
    wrap.appendChild(bar);
  }
}
async function showNode(id) {
  const d = await (await fetch('/api/nodes/' + id)).json();
  document.getElementById('detail').textContent = JSON.stringify(d, null, 2);
}
async function showBreakdown(id) {
  const d = await (await fetch('/api/riocs/' + id)).json();
  let text = 'rIoC ' + id + '\n';
  for (const f of d.breakdown || []) {
    text += (f.present ? '  ' : '  (empty) ') + f.name +
      ': value ' + f.value + ', weight ' + f.weight.toFixed(4) + '\n';
  }
  document.getElementById('breakdown').textContent = text || 'no breakdown';
}
refresh();
// The first WebSocket message is a snapshot carrying the server revision;
// pushes carry the revision they produced. Tracking the highest seen lets a
// reconnect present ?since= and receive only the changes it missed.
let revision = 0;
function connect() {
  const since = revision > 0 ? '?since=' + revision : '';
  const ws = new WebSocket((location.protocol === 'https:' ? 'wss://' : 'ws://') + location.host + '/ws' + since);
  ws.onmessage = (e) => {
    try {
      const msg = JSON.parse(e.data);
      if (msg.kind === 'snapshot') revision = Math.max(revision, msg.revision || 0);
      else revision = Math.max(revision, msg.seq || 0);
    } catch (err) { /* refresh regardless */ }
    refresh();
  };
  ws.onclose = () => setTimeout(connect, 1000 + Math.random() * 2000);
}
connect();
setInterval(refresh, 15000);
</script>
</body>
</html>
`
