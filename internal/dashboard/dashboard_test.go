package dashboard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/sessions"
	"github.com/caisplatform/caisp/internal/wsock"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

func testServer(t *testing.T) (*Server, *infra.Collector, *httptest.Server) {
	t.Helper()
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(collector)
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Close()
		srv.Close()
	})
	return s, collector, srv
}

func sampleRIoC(nodeIDs []string, allNodes bool) heuristic.RIoC {
	return heuristic.RIoC{
		ID:          "rioc--test",
		EIoCRef:     "vulnerability--00000000-0000-4000-8000-000000000000",
		SDOType:     "vulnerability",
		CVE:         "CVE-2017-9805",
		Title:       "CVE-2017-9805",
		Description: "Apache Struts RCE",
		ThreatScore: 2.7407,
		Priority:    "medium",
		Application: "apache",
		NodeIDs:     nodeIDs,
		AllNodes:    allNodes,
		GeneratedAt: now,
	}
}

func TestTopologyFig2(t *testing.T) {
	s, collector, srv := testServer(t)
	// One red alarm on node1, one yellow on node4, an rIoC on node4.
	if _, err := collector.AddAlarm(infra.Alarm{NodeID: "node1", Severity: infra.SeverityHigh, Description: "x", At: now}); err != nil {
		t.Fatal(err)
	}
	if _, err := collector.AddAlarm(infra.Alarm{NodeID: "node4", Severity: infra.SeverityMedium, Description: "y", At: now}); err != nil {
		t.Fatal(err)
	}
	s.PushRIoC(sampleRIoC([]string{"node4"}, false))

	resp, err := http.Get(srv.URL + "/api/topology")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topo Topology
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 4 {
		t.Fatalf("topology has %d nodes", len(topo.Nodes))
	}
	byID := make(map[string]NodeSummary)
	for _, n := range topo.Nodes {
		byID[n.ID] = n
	}
	if byID["node1"].Alarms["red"] != 1 || byID["node1"].AlarmTotal != 1 {
		t.Fatalf("node1 alarms = %+v", byID["node1"])
	}
	if byID["node4"].Alarms["yellow"] != 1 || byID["node4"].RIoCs != 1 {
		t.Fatalf("node4 = %+v", byID["node4"])
	}
	if byID["node2"].AlarmTotal != 0 || byID["node2"].RIoCs != 0 {
		t.Fatalf("node2 = %+v", byID["node2"])
	}
	if len(topo.Networks) != 2 { // LAN, WAN
		t.Fatalf("networks = %v", topo.Networks)
	}
}

func TestNodeDetailFig3(t *testing.T) {
	s, collector, srv := testServer(t)
	if _, err := collector.AddAlarm(infra.Alarm{
		NodeID: "node4", Severity: infra.SeverityHigh,
		SrcIP: "198.51.100.9", DstIP: "10.0.0.14",
		Description: "struts probe", Application: "apache", At: now,
	}); err != nil {
		t.Fatal(err)
	}
	s.PushRIoC(sampleRIoC([]string{"node4"}, false))

	resp, err := http.Get(srv.URL + "/api/nodes/node4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var detail NodeDetail
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	if detail.Node.Name != "XL-SIEM" || detail.Node.OS != "debian" {
		t.Fatalf("node = %+v", detail.Node)
	}
	if len(detail.Node.IPs) == 0 || len(detail.Node.Networks) == 0 {
		t.Fatalf("fig 3 fields missing: %+v", detail.Node)
	}
	if len(detail.Alarms) != 1 || detail.Alarms[0].SrcIP != "198.51.100.9" {
		t.Fatalf("alarms = %+v", detail.Alarms)
	}
	if len(detail.RIoCs) != 1 || detail.RIoCs[0].CVE != "CVE-2017-9805" {
		t.Fatalf("riocs = %+v", detail.RIoCs)
	}

	// Unknown node → 404.
	resp2, err := http.Get(srv.URL + "/api/nodes/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost node status = %d", resp2.StatusCode)
	}
}

func TestRIoCListFig4(t *testing.T) {
	s, _, srv := testServer(t)
	s.PushRIoC(sampleRIoC([]string{"node4"}, false))
	resp, err := http.Get(srv.URL + "/api/riocs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var riocs []heuristic.RIoC
	if err := json.NewDecoder(resp.Body).Decode(&riocs); err != nil {
		t.Fatal(err)
	}
	if len(riocs) != 1 {
		t.Fatalf("riocs = %d", len(riocs))
	}
	r := riocs[0]
	// Fig. 4 fields: CVE, description, affected infrastructure, TS.
	if r.CVE == "" || r.Description == "" || len(r.NodeIDs) == 0 || r.ThreatScore == 0 {
		t.Fatalf("fig 4 fields missing: %+v", r)
	}
}

func TestAllNodesRIoCCountsEverywhere(t *testing.T) {
	s, _, _ := testServer(t)
	s.PushRIoC(sampleRIoC([]string{"node1", "node2", "node3", "node4"}, true))
	topo := s.BuildTopology()
	for _, n := range topo.Nodes {
		if n.RIoCs != 1 {
			t.Fatalf("node %s riocs = %d, want 1 (all-nodes rIoC)", n.ID, n.RIoCs)
		}
	}
}

// dialWS connects a WebSocket client and returns it with its greeting
// snapshot (the first message every client receives).
func dialWS(t *testing.T, srv *httptest.Server, query string) (*wsock.Conn, Snapshot) {
	t.Helper()
	wsURL := "ws" + strings.TrimPrefix(srv.URL, "http") + "/ws" + query
	conn, err := wsock.Dial(wsURL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Kind != "snapshot" {
		t.Fatalf("first message kind = %q, want snapshot", snap.Kind)
	}
	return conn, snap
}

func TestWebSocketPush(t *testing.T) {
	s, collector, srv := testServer(t)
	conn, snap := dialWS(t, srv, "")
	if !snap.Full || len(snap.RIoCs) != 0 || snap.Revision != 0 {
		t.Fatalf("greeting snapshot = %+v", snap)
	}
	waitFor(t, func() bool { return s.ClientCount() == 1 })

	s.PushRIoC(sampleRIoC([]string{"node4"}, false))
	_, payload, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(payload, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "rioc" || ev.RIoC == nil || ev.RIoC.CVE != "CVE-2017-9805" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Seq != 1 {
		t.Fatalf("push seq = %d, want 1", ev.Seq)
	}

	alarm, err := collector.AddAlarm(infra.Alarm{NodeID: "node1", Severity: infra.SeverityHigh, Description: "live", At: now})
	if err != nil {
		t.Fatal(err)
	}
	s.PushAlarm(alarm)
	_, payload, err = conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(payload, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "alarm" || ev.Alarm == nil || ev.Alarm.Description != "live" {
		t.Fatalf("alarm event = %+v", ev)
	}
}

// pushSample loads n distinct rIoCs, returning the server revision.
func pushSample(s *Server, n int) uint64 {
	for i := 0; i < n; i++ {
		r := sampleRIoC([]string{"node4"}, false)
		r.ID = fmt.Sprintf("rioc--%d", i)
		r.EventUUID = fmt.Sprintf("event-%d", i%2)
		s.PushRIoC(r)
	}
	return s.Revision()
}

func TestConnectFullSnapshot(t *testing.T) {
	s, _, srv := testServer(t)
	rev := pushSample(s, 3)

	_, snap := dialWS(t, srv, "")
	if !snap.Full || snap.Revision != rev || len(snap.RIoCs) != 3 {
		t.Fatalf("snapshot = full:%v rev:%d n:%d, want full rev %d with 3 entries",
			snap.Full, snap.Revision, len(snap.RIoCs), rev)
	}
}

func TestConnectDeltaSnapshot(t *testing.T) {
	s, _, srv := testServer(t)
	rev := pushSample(s, 3)

	// A client current through rev reconnects after two more changes: one
	// new entry and one in-place re-score of an existing entry.
	r := sampleRIoC([]string{"node4"}, false)
	r.ID, r.EventUUID = "rioc--new", "event-9"
	s.PushRIoC(r)
	rescored := sampleRIoC([]string{"node4"}, false)
	rescored.ID, rescored.EventUUID = "rioc--1", "event-1"
	rescored.ThreatScore = 9.9
	s.PushRIoC(rescored)

	_, snap := dialWS(t, srv, fmt.Sprintf("?since=%d", rev))
	if snap.Full {
		t.Fatalf("snapshot full = true, want delta")
	}
	if snap.Revision != rev+2 || len(snap.RIoCs) != 2 {
		t.Fatalf("delta = rev:%d n:%d, want rev %d with 2 entries", snap.Revision, len(snap.RIoCs), rev+2)
	}
	got := map[string]float64{}
	for _, x := range snap.RIoCs {
		got[x.ID] = x.ThreatScore
	}
	if _, ok := got["rioc--new"]; !ok {
		t.Fatalf("delta missing new entry: %v", got)
	}
	if got["rioc--1"] != 9.9 {
		t.Fatalf("delta missing re-scored entry: %v", got)
	}

	// An up-to-date client gets an empty delta.
	_, empty := dialWS(t, srv, fmt.Sprintf("?since=%d", s.Revision()))
	if empty.Full || len(empty.RIoCs) != 0 {
		t.Fatalf("up-to-date delta = full:%v n:%d", empty.Full, len(empty.RIoCs))
	}
}

func TestConnectSinceBeforeDropFallsBackToFull(t *testing.T) {
	s, _, srv := testServer(t)
	rev := pushSample(s, 4) // event-0: rioc--0, rioc--2; event-1: rioc--1, rioc--3

	if n := s.DropEventRIoCs("event-0"); n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	// rev predates the drop, which cannot be replayed as a delta.
	_, snap := dialWS(t, srv, fmt.Sprintf("?since=%d", rev))
	if !snap.Full {
		t.Fatal("snapshot after drop not full")
	}
	if len(snap.RIoCs) != 2 {
		t.Fatalf("post-drop snapshot has %d entries, want 2", len(snap.RIoCs))
	}
	for _, x := range snap.RIoCs {
		if x.EventUUID == "event-0" {
			t.Fatalf("dropped entry %s still in snapshot", x.ID)
		}
	}

	// A since from the future (e.g. a previous server life) is also full.
	_, future := dialWS(t, srv, fmt.Sprintf("?since=%d", s.Revision()+100))
	if !future.Full {
		t.Fatal("future since did not fall back to full snapshot")
	}
}

func TestIndexPage(t *testing.T) {
	_, _, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "CAISP Dashboard") {
		t.Fatal("index page content unexpected")
	}
	// Unknown paths under / are 404s, not the index.
	resp2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestRenderTopology(t *testing.T) {
	s, collector, _ := testServer(t)
	if _, err := collector.AddAlarm(infra.Alarm{NodeID: "node4", Severity: infra.SeverityHigh, Description: "x", At: now}); err != nil {
		t.Fatal(err)
	}
	s.PushRIoC(sampleRIoC([]string{"node4"}, false))
	text := s.RenderTopology()
	if !strings.Contains(text, "node4") || !strings.Contains(text, "★ 1") {
		t.Fatalf("rendering missing node4 star:\n%s", text)
	}
	if !strings.Contains(text, "networks: LAN, WAN") {
		t.Fatalf("rendering missing networks:\n%s", text)
	}
}

func TestAlarmsEndpoint(t *testing.T) {
	_, collector, srv := testServer(t)
	if _, err := collector.AddAlarm(infra.Alarm{NodeID: "node2", Severity: infra.SeverityLow, Description: "scan", At: now}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var alarms []infra.Alarm
	if err := json.NewDecoder(resp.Body).Decode(&alarms); err != nil {
		t.Fatal(err)
	}
	if len(alarms) != 1 || alarms[0].NodeID != "node2" {
		t.Fatalf("alarms = %+v", alarms)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRIoCDetailBreakdown(t *testing.T) {
	s, _, srv := testServer(t)
	r := sampleRIoC([]string{"node4"}, false)
	r.Breakdown = []heuristic.FeatureResult{
		{Name: "cve", Value: 4, Weight: 17.0 / 84, Present: true},
		{Name: "valid_until", Present: false},
	}
	s.PushRIoC(r)

	resp, err := http.Get(srv.URL + "/api/riocs/" + r.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status = %d", resp.StatusCode)
	}
	var detail RIoCDetail
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	if len(detail.Breakdown) != 2 || detail.Breakdown[0].Name != "cve" {
		t.Fatalf("breakdown = %+v", detail.Breakdown)
	}
	if detail.RIoC.CVE != "CVE-2017-9805" {
		t.Fatalf("rioc = %+v", detail.RIoC)
	}

	// The breakdown must NOT ride on the reduced wire form.
	wire, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(wire), "breakdown") {
		t.Fatalf("wire rIoC leaks the breakdown: %s", wire)
	}

	resp2, err := http.Get(srv.URL + "/api/riocs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost rIoC status = %d", resp2.StatusCode)
	}
}

func TestSessionEndpoints(t *testing.T) {
	s, _, srv := testServer(t)
	// Not enabled yet → 404.
	resp, err := http.Get(srv.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled sessions status = %d", resp.StatusCode)
	}

	analyzer := sessions.NewAnalyzer()
	mk := func(id string, actions ...string) sessions.Session {
		ses := sessions.Session{ID: id, User: "u-" + id}
		for i, name := range actions {
			ses.Actions = append(ses.Actions, sessions.Action{Name: name, At: now.Add(time.Duration(i) * time.Minute)})
		}
		return ses
	}
	for i := 0; i < 5; i++ {
		if err := analyzer.Add(mk(fmt.Sprintf("s%d", i), "login", "browse", "logout")); err != nil {
			t.Fatal(err)
		}
	}
	if err := analyzer.Add(mk("odd", "login", "sudo", "exfiltrate")); err != nil {
		t.Fatal(err)
	}
	s.SetSessionAnalyzer(analyzer)

	resp2, err := http.Get(srv.URL + "/api/sessions?top=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var summary sessions.Summary
	if err := json.NewDecoder(resp2.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if summary.Sessions != 6 || len(summary.Abnormal) == 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.Abnormal[0].SessionID != "odd" {
		t.Fatalf("most abnormal = %+v", summary.Abnormal[0])
	}

	resp3, err := http.Get(srv.URL + "/api/sessions/compare?a=s0&b=odd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var cmp sessions.Comparison
	if err := json.NewDecoder(resp3.Body).Decode(&cmp); err != nil {
		t.Fatal(err)
	}
	if len(cmp.OnlyB) == 0 {
		t.Fatalf("comparison = %+v", cmp)
	}
	resp4, err := http.Get(srv.URL + "/api/sessions/compare?a=s0&b=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad compare status = %d", resp4.StatusCode)
	}
}

func TestTimeline(t *testing.T) {
	s, collector, srv := testServer(t)
	r1 := sampleRIoC([]string{"node4"}, false)
	r1.GeneratedAt = now
	s.PushRIoC(r1)
	r2 := sampleRIoC([]string{"node4"}, false)
	r2.ID = "rioc--second"
	r2.GeneratedAt = now.Add(30 * time.Second) // same minute
	s.PushRIoC(r2)
	alarm, err := collector.AddAlarm(infra.Alarm{
		NodeID: "node1", Severity: infra.SeverityHigh, Description: "x",
		At: now.Add(3 * time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.PushAlarm(alarm)

	buckets := s.Timeline()
	if len(buckets) != 2 {
		t.Fatalf("buckets = %+v", buckets)
	}
	if buckets[0].RIoCs != 2 || buckets[0].Alarms != 0 {
		t.Fatalf("first bucket = %+v", buckets[0])
	}
	if buckets[1].Alarms != 1 || buckets[1].RIoCs != 0 {
		t.Fatalf("second bucket = %+v", buckets[1])
	}
	if !buckets[0].Minute.Before(buckets[1].Minute) {
		t.Fatal("buckets not sorted")
	}

	resp, err := http.Get(srv.URL + "/api/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var viaHTTP []TimelineBucket
	if err := json.NewDecoder(resp.Body).Decode(&viaHTTP); err != nil {
		t.Fatal(err)
	}
	if len(viaHTTP) != 2 {
		t.Fatalf("http buckets = %d", len(viaHTTP))
	}
}

func TestTimelineBufferBounded(t *testing.T) {
	s, _, _ := testServer(t)
	for i := 0; i < 10010; i++ {
		r := sampleRIoC([]string{"node4"}, false)
		r.GeneratedAt = now.Add(time.Duration(i) * time.Second)
		s.PushRIoC(r)
	}
	s.mu.RLock()
	n := len(s.marks)
	s.mu.RUnlock()
	if n > 10000 {
		t.Fatalf("marks = %d, buffer unbounded", n)
	}
}

func TestConcurrentPollUnderPush(t *testing.T) {
	s, _, srv := testServer(t)
	const pushes = 200
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // pusher
		defer wg.Done()
		defer close(done)
		for i := 0; i < pushes; i++ {
			r := sampleRIoC([]string{"node4"}, false)
			r.ID = fmt.Sprintf("rioc--%d", i)
			r.GeneratedAt = now.Add(time.Duration(i) * time.Second)
			s.PushRIoC(r)
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // pollers: the dashboard refresh loop
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := s.RIoCs()
				for i, r := range snap {
					if want := fmt.Sprintf("rioc--%d", i); r.ID != want {
						t.Errorf("snapshot[%d] = %s, want %s", i, r.ID, want)
						return
					}
				}
				resp, err := http.Get(srv.URL + "/api/riocs")
				if err != nil {
					t.Error(err)
					return
				}
				var got []heuristic.RIoC
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) > pushes {
					t.Errorf("poll returned %d riocs, max %d", len(got), pushes)
					return
				}
			}
		}()
	}
	wg.Wait()

	// A snapshot taken now is immutable: later pushes must not write into
	// its backing array.
	snap := s.RIoCs()
	if len(snap) != pushes {
		t.Fatalf("final snapshot = %d riocs, want %d", len(snap), pushes)
	}
	firstID := snap[0].ID
	r := sampleRIoC([]string{"node4"}, false)
	r.ID = "rioc--late"
	s.PushRIoC(r)
	if snap[0].ID != firstID || len(snap) != pushes {
		t.Fatal("captured snapshot mutated by a later push")
	}
}
