package dashboard

import (
	"log/slog"
	"strings"
	"testing"

	"github.com/caisplatform/caisp/internal/infra"
)

// TestSlowPushLogged pins the dashboard slow-op path: a push above the
// threshold emits one structured warning with the stage and rIoC identity.
func TestSlowPushLogged(t *testing.T) {
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	logger := slog.New(slog.NewTextHandler(&sb, nil))
	s := NewServer(collector, WithLogger(logger), WithSlowThreshold(1)) // 1ns
	defer s.Close()
	s.PushRIoC(sampleRIoC([]string{"node4"}, false))
	out := sb.String()
	for _, want := range []string{"slow dashboard push", "stage=publish", "rioc_id=rioc--test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-push log missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	quiet := NewServer(collector, WithLogger(logger), WithSlowThreshold(1<<40))
	defer quiet.Close()
	quiet.PushRIoC(sampleRIoC([]string{"node4"}, false))
	if sb.Len() != 0 {
		t.Fatalf("fast push logged:\n%s", sb.String())
	}
}
