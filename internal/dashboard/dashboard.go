// Package dashboard implements the Output Module's visualization server
// (paper §III-C1): a graphical representation of the infrastructure
// topology where each node shows a circle with the number and severity of
// its alarms (green/yellow/red) and a star with the number of rIoCs
// associated to it (Fig. 2); a detail view per node with type, IPs,
// operating system and connected networks (Fig. 3); and per-rIoC detail
// with CVE, description, affected asset and threat score (Fig. 4).
// Reduced IoCs and alarms are pushed live to connected browsers over
// WebSockets (the paper's socket.io channel).
package dashboard

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/sessions"
	"github.com/caisplatform/caisp/internal/wsock"
)

// NodeSummary is one node of the Fig. 2 topology view.
type NodeSummary struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Type     string   `json:"type,omitempty"`
	Networks []string `json:"networks,omitempty"`
	// Alarms maps severity colour → count (the circle indicator).
	Alarms map[string]int `json:"alarms"`
	// AlarmTotal is the total number of alarms on the node.
	AlarmTotal int `json:"alarm_total"`
	// RIoCs is the number of reduced IoCs associated to the node (the
	// star indicator).
	RIoCs int `json:"riocs"`
}

// Topology is the Fig. 2 payload.
type Topology struct {
	Nodes []NodeSummary `json:"nodes"`
	// Networks lists the distinct networks nodes connect to.
	Networks []string `json:"networks"`
}

// NodeDetail is the Fig. 3 payload: the separate tab with "the type of
// node, the IP addresses, the operating system and the connected networks"
// plus the node's security data.
type NodeDetail struct {
	Node   infra.Node       `json:"node"`
	Alarms []infra.Alarm    `json:"alarms"`
	RIoCs  []heuristic.RIoC `json:"riocs"`
}

// Event is the WebSocket push envelope. Seq is the dashboard revision the
// push produced (rIoC pushes) or was emitted at (alarms); clients keep the
// highest Seq they have applied and present it as ?since= on reconnect to
// receive a delta snapshot instead of full state.
type Event struct {
	Kind  string          `json:"kind"` // "rioc" or "alarm"
	Seq   uint64          `json:"seq,omitempty"`
	RIoC  *heuristic.RIoC `json:"rioc,omitempty"`
	Alarm *infra.Alarm    `json:"alarm,omitempty"`
}

// Snapshot is the first WebSocket message a connecting client receives:
// the rIoC state as of Revision. Full reports whether it is the complete
// state or only the entries changed since the client's ?since= revision.
// Individual pushes racing the handshake may arrive before the snapshot;
// they carry Seq ≤ Revision when already folded into it, so clients
// merging by Seq converge either way.
type Snapshot struct {
	Kind     string           `json:"kind"` // "snapshot"
	Full     bool             `json:"full"`
	Revision uint64           `json:"revision"`
	RIoCs    []heuristic.RIoC `json:"riocs"`
}

// Server is the dashboard backend.
type Server struct {
	collector *infra.Collector
	hub       *wsock.Hub
	hubOpts   []wsock.HubOption
	logger    *slog.Logger
	slowAt    time.Duration // slow-push log threshold; 0 disables

	metricsReg  *obs.Registry
	pushDur     *obs.Histogram // caisp_dashboard_push_seconds; nil without WithMetrics
	revisionLag *obs.Histogram // caisp_dashboard_revision_lag_seconds

	mu    sync.RWMutex
	riocs []heuristic.RIoC
	// riocIdx maps (event UUID, rIoC ID) → position in riocs, so re-scores
	// of a grown cluster update the entry in place instead of duplicating
	// it in every count.
	riocIdx map[string]int
	// seq is the dashboard revision: it advances on every rIoC push and
	// drop. seqs[i] records the revision that last wrote riocs[i], driving
	// the ?since= delta snapshot on connect; baseSeq is the oldest revision
	// deltas can still be cut from (drops advance it — a removal cannot be
	// replayed, so older clients fall back to a full snapshot).
	seq     uint64
	seqs    []uint64
	baseSeq uint64

	analyzer *sessions.Analyzer
	marks    []timelineMark

	mux *http.ServeMux
}

// timelineMark records one pushed artifact for the streaming view.
type timelineMark struct {
	at   time.Time
	kind string // "rioc" or "alarm"
}

// TimelineBucket is one minute of dashboard activity.
type TimelineBucket struct {
	Minute time.Time `json:"minute"`
	RIoCs  int       `json:"riocs"`
	Alarms int       `json:"alarms"`
}

// Option configures a Server.
type Option interface{ apply(*Server) }

type loggerOption struct{ l *slog.Logger }

func (o loggerOption) apply(s *Server) { s.logger = o.l }

// WithLogger sets the dashboard's logger (slow-push reports; see
// WithSlowThreshold). Nil restores the default logger.
func WithLogger(l *slog.Logger) Option { return loggerOption{l: l} }

type slowThresholdOption time.Duration

func (o slowThresholdOption) apply(s *Server) { s.slowAt = time.Duration(o) }

// WithSlowThreshold logs a warning with the originating event UUID for
// every PushRIoC slower than d (store plus WebSocket broadcast). Zero (the
// default) disables slow-push logging.
func WithSlowThreshold(d time.Duration) Option { return slowThresholdOption(d) }

type hubOptionsOption struct{ opts []wsock.HubOption }

func (o hubOptionsOption) apply(s *Server) { s.hubOpts = append(s.hubOpts, o.opts...) }

// WithHubOptions forwards options to the broadcast hub: shard count,
// per-client queue depth, write timeout, the serial-broadcast ablation.
func WithHubOptions(opts ...wsock.HubOption) Option { return hubOptionsOption{opts: opts} }

type metricsOption struct{ reg *obs.Registry }

func (o metricsOption) apply(s *Server) {
	if o.reg == nil {
		return
	}
	s.metricsReg = o.reg
	s.pushDur = o.reg.Histogram("caisp_dashboard_push_seconds",
		"PushRIoC latency: in-place store plus WebSocket broadcast.")
	s.revisionLag = o.reg.Histogram("caisp_dashboard_revision_lag_seconds",
		"Age of a pushed rIoC at dashboard arrival (now minus GeneratedAt).",
		0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300)
	o.reg.GaugeFunc("caisp_dashboard_riocs",
		"Reduced IoCs currently shown on the dashboard.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.riocs))
		})
	o.reg.GaugeFunc("caisp_dashboard_ws_clients",
		"Connected WebSocket clients.",
		func() float64 { return float64(s.hub.Len()) })
}

// WithMetrics registers the dashboard's caisp_dashboard_* families into
// reg (nil disables instrumentation).
func WithMetrics(reg *obs.Registry) Option { return metricsOption{reg: reg} }

// NewServer builds a dashboard over an infrastructure collector.
func NewServer(collector *infra.Collector, opts ...Option) *Server {
	s := &Server{
		collector: collector,
		logger:    slog.Default(),
		riocIdx:   make(map[string]int),
		mux:       http.NewServeMux(),
	}
	for _, o := range opts {
		o.apply(s)
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	// The hub is built after options so WithHubOptions and WithMetrics can
	// shape it (the ws_clients gauge above reads s.hub lazily at scrape).
	if s.metricsReg != nil {
		s.hubOpts = append(s.hubOpts, wsock.WithHubMetrics(s.metricsReg))
	}
	s.hub = wsock.NewHub(s.hubOpts...)
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/topology", s.handleTopology)
	s.mux.HandleFunc("GET /api/nodes/{id}", s.handleNode)
	s.mux.HandleFunc("GET /api/alarms", s.handleAlarms)
	s.mux.HandleFunc("GET /api/riocs", s.handleRIoCs)
	s.mux.HandleFunc("GET /api/riocs/{id}", s.handleRIoCDetail)
	s.mux.HandleFunc("GET /ws", s.handleWS)
	s.mux.HandleFunc("GET /api/sessions", s.handleSessions)
	s.mux.HandleFunc("GET /api/sessions/compare", s.handleSessionCompare)
	s.mux.HandleFunc("GET /api/timeline", s.handleTimeline)
	return s
}

// SetSubscriptions mounts the streaming-detection surface (subscribe.API)
// on the dashboard listener: /subscriptions REST plus the /ws/matches
// match stream. Registered patterns are more specific than the GET /
// index catch-all, so mounting order does not matter.
func (s *Server) SetSubscriptions(h http.Handler) {
	// Method-qualified patterns: a bare "/subscriptions" would conflict
	// with the "GET /" index catch-all under the 1.22 mux rules.
	s.mux.Handle("POST /subscriptions", h)
	s.mux.Handle("GET /subscriptions", h)
	s.mux.Handle("GET /subscriptions/{rest...}", h)
	s.mux.Handle("DELETE /subscriptions/{id}", h)
	s.mux.Handle("GET /ws/matches", h)
}

// SetLifecycle mounts the indicator-lifecycle surface (lifecycle.API) on
// the dashboard listener: /lifecycle/stats plus the per-indicator
// score-history endpoints.
func (s *Server) SetLifecycle(h http.Handler) {
	s.mux.Handle("GET /lifecycle/{rest...}", h)
}

// SetSessionAnalyzer attaches the §II-B user-activity analyzer; the
// /api/sessions endpoints serve its summaries.
func (s *Server) SetSessionAnalyzer(a *sessions.Analyzer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.analyzer = a
}

func (s *Server) sessionAnalyzer() *sessions.Analyzer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.analyzer
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	a := s.sessionAnalyzer()
	if a == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "session analytics not enabled"})
		return
	}
	topK := 10
	if raw := r.URL.Query().Get("top"); raw != "" {
		if n, err := strconv.Atoi(raw); err == nil && n > 0 {
			topK = n
		}
	}
	writeJSON(w, http.StatusOK, a.Summarize(topK))
}

func (s *Server) handleSessionCompare(w http.ResponseWriter, r *http.Request) {
	a := s.sessionAnalyzer()
	if a == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "session analytics not enabled"})
		return
	}
	cmp, err := a.Compare(r.URL.Query().Get("a"), r.URL.Query().Get("b"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, cmp)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// PushRIoC stores a reduced IoC and broadcasts it to connected clients. A
// push carrying the same (event UUID, rIoC ID) as an earlier one is a
// re-score of the same cluster: the stored entry is replaced in place with
// a bumped Revision, so dashboard counts never double-count a cluster that
// grew across flush batches.
func (s *Server) PushRIoC(r heuristic.RIoC) {
	var start time.Time
	if s.pushDur != nil || s.slowAt > 0 {
		start = time.Now()
	}
	if s.revisionLag != nil && !r.GeneratedAt.IsZero() {
		s.revisionLag.Observe(time.Since(r.GeneratedAt).Seconds())
	}
	s.mu.Lock()
	key := riocKey(&r)
	s.seq++
	seq := s.seq
	if i, ok := s.riocIdx[key]; ok {
		r.Revision = s.riocs[i].Revision + 1
		// Copy-on-write replacement: RIoCs() hands out capacity-clipped
		// views of s.riocs, so past elements must never be rewritten.
		fresh := make([]heuristic.RIoC, len(s.riocs))
		copy(fresh, s.riocs)
		fresh[i] = r
		s.riocs = fresh
		s.seqs[i] = seq
	} else {
		s.riocIdx[key] = len(s.riocs)
		s.riocs = append(s.riocs, r)
		s.seqs = append(s.seqs, seq)
	}
	s.mark(r.GeneratedAt, "rioc")
	s.mu.Unlock()
	s.broadcast(Event{Kind: "rioc", Seq: seq, RIoC: &r})
	if !start.IsZero() {
		elapsed := time.Since(start)
		if s.pushDur != nil {
			s.pushDur.Observe(elapsed.Seconds())
		}
		if s.slowAt > 0 && elapsed > s.slowAt {
			s.logger.Warn("slow dashboard push",
				"stage", "publish", "event_uuid", r.EventUUID, "rioc_id", r.ID,
				"elapsed_ms", float64(elapsed)/float64(time.Millisecond),
				"threshold_ms", float64(s.slowAt)/float64(time.Millisecond))
		}
	}
}

// DropEventRIoCs removes every rIoC reduced from the given stored event —
// called when a cluster is absorbed into a survivor and its MISP event
// retracted. It returns how many entries were dropped.
func (s *Server) DropEventRIoCs(eventUUID string) int {
	if eventUUID == "" {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, r := range s.riocs {
		if r.EventUUID == eventUUID {
			dropped++
		}
	}
	if dropped == 0 {
		return 0
	}
	fresh := make([]heuristic.RIoC, 0, len(s.riocs)-dropped)
	freshSeqs := make([]uint64, 0, len(s.riocs)-dropped)
	idx := make(map[string]int, len(s.riocs)-dropped)
	for i, r := range s.riocs {
		if r.EventUUID == eventUUID {
			continue
		}
		idx[riocKey(&r)] = len(fresh)
		fresh = append(fresh, r)
		freshSeqs = append(freshSeqs, s.seqs[i])
	}
	s.riocs = fresh
	s.seqs = freshSeqs
	s.riocIdx = idx
	// A removal cannot be expressed as a delta; clients whose ?since=
	// predates it must take a full snapshot.
	s.seq++
	s.baseSeq = s.seq
	return dropped
}

// riocKey identifies one dashboard entry: the rIoC ID scoped by the MISP
// event it came from (deterministic SDO IDs collide across clusters that
// share e.g. a CVE).
func riocKey(r *heuristic.RIoC) string {
	return r.EventUUID + "\x00" + r.ID
}

// PushAlarm broadcasts an alarm (already recorded in the collector).
func (s *Server) PushAlarm(a infra.Alarm) {
	s.mu.Lock()
	s.mark(a.At, "alarm")
	seq := s.seq
	s.mu.Unlock()
	s.broadcast(Event{Kind: "alarm", Seq: seq, Alarm: &a})
}

// mark appends to the streaming timeline; caller holds the write lock. The
// buffer is bounded: the oldest half is dropped past 10000 marks.
func (s *Server) mark(at time.Time, kind string) {
	if at.IsZero() {
		at = time.Now().UTC()
	}
	s.marks = append(s.marks, timelineMark{at: at.UTC(), kind: kind})
	if len(s.marks) > 10000 {
		s.marks = append([]timelineMark(nil), s.marks[len(s.marks)/2:]...)
	}
}

// Timeline aggregates pushed artifacts into per-minute buckets, oldest
// first — the dashboard's view of "data that is under constant change,
// i.e., real-time streaming data" (§II-B).
func (s *Server) Timeline() []TimelineBucket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	byMinute := make(map[time.Time]*TimelineBucket)
	for _, m := range s.marks {
		minute := m.at.Truncate(time.Minute)
		b := byMinute[minute]
		if b == nil {
			b = &TimelineBucket{Minute: minute}
			byMinute[minute] = b
		}
		switch m.kind {
		case "rioc":
			b.RIoCs++
		case "alarm":
			b.Alarms++
		}
	}
	out := make([]TimelineBucket, 0, len(byMinute))
	for _, b := range byMinute {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Minute.Before(out[j].Minute) })
	return out
}

func (s *Server) handleTimeline(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Timeline())
}

// RIoCs returns the stored reduced IoCs as a shared immutable snapshot.
// Past elements of s.riocs are never rewritten — appends either grow a
// private tail or reallocate, and in-place updates / drops replace the
// whole slice copy-on-write — so a capacity-clipped slice header is a
// consistent copy-free view.
func (s *Server) RIoCs() []heuristic.RIoC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.riocs[:len(s.riocs):len(s.riocs)]
}

// RIoCsForNode filters rIoCs touching the given node.
func (s *Server) RIoCsForNode(nodeID string) []heuristic.RIoC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []heuristic.RIoC
	for _, r := range s.riocs {
		for _, id := range r.NodeIDs {
			if id == nodeID {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// ClientCount reports connected WebSocket clients.
func (s *Server) ClientCount() int { return s.hub.Len() }

// HubSaturation reports the fill fraction [0,1] of the deepest client
// send queue on the last broadcast — the hub-saturation health signal.
func (s *Server) HubSaturation() float64 { return s.hub.QueueSaturation() }

// Revision returns the current dashboard revision — the value a client
// would present as ?since= to receive only newer changes.
func (s *Server) Revision() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Close drops all WebSocket clients and stops the hub.
func (s *Server) Close() { s.hub.Close() }

// BuildTopology assembles the Fig. 2 view model.
func (s *Server) BuildTopology() Topology {
	inv := s.collector.Inventory()
	topo := Topology{Nodes: make([]NodeSummary, 0, len(inv.Nodes))}
	networkSet := make(map[string]bool)
	for _, n := range inv.Nodes {
		counts := s.collector.SeverityCounts(n.ID)
		alarms := map[string]int{
			infra.SeverityLow.String():    counts[infra.SeverityLow],
			infra.SeverityMedium.String(): counts[infra.SeverityMedium],
			infra.SeverityHigh.String():   counts[infra.SeverityHigh],
		}
		total := counts[infra.SeverityLow] + counts[infra.SeverityMedium] + counts[infra.SeverityHigh]
		topo.Nodes = append(topo.Nodes, NodeSummary{
			ID:         n.ID,
			Name:       n.Name,
			Type:       n.Type,
			Networks:   n.Networks,
			Alarms:     alarms,
			AlarmTotal: total,
			RIoCs:      len(s.RIoCsForNode(n.ID)),
		})
		for _, net := range n.Networks {
			networkSet[net] = true
		}
	}
	for net := range networkSet {
		topo.Networks = append(topo.Networks, net)
	}
	sort.Strings(topo.Networks)
	return topo
}

// RenderTopology prints the Fig. 2 view as text: one line per node with
// the alarm circle (● counts by colour) and the rIoC star (★ count).
func (s *Server) RenderTopology() string {
	topo := s.BuildTopology()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-10s %-28s %s\n", "NODE", "NAME", "ALARMS ●(g/y/r)", "rIoCs ★")
	for _, n := range topo.Nodes {
		fmt.Fprintf(&sb, "%-8s %-10s g:%-3d y:%-3d r:%-3d (tot %-3d)  ★ %d\n",
			n.ID, n.Name,
			n.Alarms["green"], n.Alarms["yellow"], n.Alarms["red"],
			n.AlarmTotal, n.RIoCs)
	}
	fmt.Fprintf(&sb, "networks: %s\n", strings.Join(topo.Networks, ", "))
	return sb.String()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

func (s *Server) handleTopology(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.BuildTopology())
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node := s.collector.Inventory().Node(id)
	if node == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown node " + id})
		return
	}
	detail := NodeDetail{
		Node:   *node,
		Alarms: s.collector.AlarmsForNode(id),
		RIoCs:  s.RIoCsForNode(id),
	}
	writeJSON(w, http.StatusOK, detail)
}

func (s *Server) handleAlarms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.collector.Alarms())
}

func (s *Server) handleRIoCs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.RIoCs())
}

// RIoCDetail is the on-demand drill-down view of one rIoC: the reduced
// fields plus the per-criterion breakdown of its threat score (§VI future
// work: "detailed information about each single criterion used in the
// evaluation of the score itself … properly displayed through the
// dashboard").
type RIoCDetail struct {
	RIoC      heuristic.RIoC            `json:"rioc"`
	Breakdown []heuristic.FeatureResult `json:"breakdown"`
}

func (s *Server) handleRIoCDetail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Resolve under the lock, encode and write outside it: the snapshot
	// elements are immutable, and serialization must not stall pushers.
	for _, rioc := range s.RIoCs() {
		if rioc.ID == id {
			writeJSON(w, http.StatusOK, RIoCDetail{RIoC: rioc, Breakdown: rioc.Breakdown})
			return
		}
	}
	writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown rIoC " + id})
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		if v, err := strconv.ParseUint(raw, 10, 64); err == nil {
			since = v
		}
	}
	conn, err := wsock.Accept(w, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.connectSnapshot(conn, since)
	// Reader loop: answers pings, detects close, evicts on error.
	go func() {
		for {
			if _, _, err := conn.ReadMessage(); err != nil {
				s.hub.Remove(conn)
				_ = conn.Close()
				return
			}
		}
	}()
	if data, err := json.Marshal(snap); err == nil {
		_ = conn.WriteText(data)
	}
}

// connectSnapshot registers conn with the hub and cuts its greeting
// snapshot in one read-locked critical section, so no push can fall
// between the snapshot revision and broadcast registration. A client
// presenting since ≥ baseSeq gets only the entries written after its
// revision; anything older — including a revision from before a drop, or
// from a previous server life — falls back to the full state.
func (s *Server) connectSnapshot(conn *wsock.Conn, since uint64) Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.hub.Add(conn)
	snap := Snapshot{Kind: "snapshot", Revision: s.seq}
	if since == 0 || since < s.baseSeq || since > s.seq {
		snap.Full = true
		// Capacity-clipped copy-free view; see RIoCs.
		snap.RIoCs = s.riocs[:len(s.riocs):len(s.riocs)]
		return snap
	}
	for i := range s.riocs {
		if s.seqs[i] > since {
			snap.RIoCs = append(snap.RIoCs, s.riocs[i])
		}
	}
	return snap
}

// broadcast pushes one event to every client: a single JSON encode and a
// single frame assembly per message, shared by all connections.
func (s *Server) broadcast(ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.hub.BroadcastPrepared(wsock.PrepareText(data))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
