// Package experiments regenerates every quantitative artifact of the paper
// — Tables I through V and the data behind Figures 2–4 — plus the
// information-reduction measurements backing the abstract's claim. The
// cmd/experiments binary prints them; the test suite asserts the values;
// EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/clock"
	"github.com/caisplatform/caisp/internal/core"
	"github.com/caisplatform/caisp/internal/dedup"
	"github.com/caisplatform/caisp/internal/detecteval"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/stix"
	"github.com/caisplatform/caisp/internal/tip"
)

// EvalTime fixes the evaluation instant so the use case's timeliness
// buckets match the paper (the IoC of 2017-09-13 falls in "last_year").
var EvalTime = time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

// TableIRow is one heuristic of Table I.
type TableIRow struct {
	Name   string
	Values []float64
	TS     float64
}

// TableIWeights are the paper's fixed feature weights.
var TableIWeights = []float64{0.10, 0.25, 0.40, 0.15, 0.10}

// TableI recomputes the example threat scores of Table I.
func TableI() ([]TableIRow, error) {
	rows := []TableIRow{
		{Name: "H1", Values: []float64{3, 4, 3, 1, 5}},
		{Name: "H2", Values: []float64{5, 2, 2, 4, 0}},
		{Name: "H3", Values: []float64{1, 1, 2, 3, 3}},
	}
	for i := range rows {
		ts, err := heuristic.StaticScore(rows[i].Values, TableIWeights)
		if err != nil {
			return nil, err
		}
		rows[i].TS = ts
	}
	return rows, nil
}

// RenderTableI prints Table I with the paper's expected values alongside.
func RenderTableI() (string, error) {
	rows, err := TableI()
	if err != nil {
		return "", err
	}
	paper := map[string]float64{"H1": 3.15, "H2": 1.92, "H3": 1.90}
	var sb strings.Builder
	sb.WriteString("Table I — Example of a Threat Score Computation\n")
	sb.WriteString("P = (0.10, 0.25, 0.40, 0.15, 0.10)\n\n")
	fmt.Fprintf(&sb, "%-4s %-20s %-10s %-10s %s\n", "H", "X1..X5", "TS (ours)", "TS (paper)", "match")
	for _, r := range rows {
		match := "OK"
		if r.TS != paper[r.Name] {
			match = "MISMATCH"
		}
		fmt.Fprintf(&sb, "%-4s %-20v %-10.2f %-10.2f %s\n", r.Name, r.Values, r.TS, paper[r.Name], match)
	}
	return sb.String(), nil
}

// RenderTableII prints the heuristic feature catalog of Table II.
func RenderTableII() string {
	engine := heuristic.NewEngine()
	var sb strings.Builder
	sb.WriteString("Table II — Heuristics and their features\n\n")
	for _, typ := range engine.SupportedTypes() {
		h := engine.Heuristic(typ)
		names := make([]string, 0, len(h.Features))
		for _, f := range h.Features {
			names = append(names, f.Name)
		}
		fmt.Fprintf(&sb, "%-16s %s\n", typ, strings.Join(names, ", "))
	}
	return sb.String()
}

// RenderTableIII prints the Table III infrastructure inventory.
func RenderTableIII() string {
	inv := infra.PaperInventory()
	var sb strings.Builder
	sb.WriteString("Table III — Infrastructure Inventory\n\n")
	fmt.Fprintf(&sb, "%-8s %-10s %s\n", "Node", "Name", "Applications")
	for _, n := range inv.Nodes {
		fmt.Fprintf(&sb, "%-8s %-10s %s\n", n.ID, n.Name, strings.Join(n.Applications, ", "))
	}
	fmt.Fprintf(&sb, "%-8s %-10s %s\n", "All", "", strings.Join(inv.CommonKeywords, ", "))
	return sb.String()
}

// RenderTableIV prints the vulnerability feature scoring rules of Table IV.
func RenderTableIV() string {
	var sb strings.Builder
	sb.WriteString("Table IV — Features, attributes and scores for vulnerability IoCs\n\n")
	rows := []struct{ feature, attrs string }{
		{feature: "operating_system", attrs: "windows (5), linux family incl. debian/centos (3), others (1), unknown (empty)"},
		{feature: "source_diversity", attrs: "OSINT_source (1), no_OSINT_source (2), infrastructure_source (3)"},
		{feature: "application", attrs: "present in infrastructure (2), not_present (1), no info (empty)"},
		{feature: "vuln_app_in_alarm", attrs: "alarms involve app (2), none (1), no app info (empty)"},
		{feature: "modified", attrs: "last_24h (5), last_week (4), last_month (3), last_year (2), other (1)"},
		{feature: "valid_from", attrs: "last_week (3), last_month (2), last_year (1), other (0)"},
		{feature: "valid_until", attrs: "still valid (5), expired (1), unknown (empty)"},
		{feature: "external_references", attrs: "multi_known_ref (5), single_known_ref (3), unknown_ref (1), no_ref (empty)"},
		{feature: "cve", attrs: "no CVSS (1), low (2), medium (3), high (4), critical (5), no CVE (empty)"},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-20s %s\n", r.feature, r.attrs)
	}
	return sb.String()
}

// UseCaseIoC builds the §IV CVE-2017-9805 STIX vulnerability object.
func UseCaseIoC() *stix.Vulnerability {
	created := time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC)
	v := stix.NewVulnerability(
		"CVE-2017-9805",
		"Apache Struts REST plugin XStream RCE via crafted POST body",
		created,
	)
	v.ExternalReferences = []stix.ExternalReference{
		{SourceName: "capec", ExternalID: "CAPEC-248"},
		{SourceName: "cve", ExternalID: "CVE-2017-9805"},
	}
	v.SetExtra(heuristic.PropOS, "debian")
	v.SetExtra(heuristic.PropProducts, "apache struts,apache")
	v.SetExtra(heuristic.PropCVSSVector, "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H")
	v.SetExtra(heuristic.PropSourceType, "osint")
	return v
}

// TableV evaluates the use-case IoC and returns the result.
func TableV() (*heuristic.Result, error) {
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		return nil, err
	}
	engine := heuristic.NewEngine(
		heuristic.WithInfrastructure(collector),
		heuristic.WithNow(func() time.Time { return EvalTime }),
	)
	return engine.Evaluate(UseCaseIoC())
}

// RenderTableV prints Table V with the paper's Xi/Pi/TS for comparison.
func RenderTableV() (string, error) {
	res, err := TableV()
	if err != nil {
		return "", err
	}
	paperXi := map[string]float64{
		"operating_system": 3, "source_diversity": 1, "application": 2,
		"vuln_app_in_alarm": 1, "modified": 2, "valid_from": 1,
		"external_references": 5, "cve": 4,
	}
	var sb strings.Builder
	sb.WriteString("Table V — Threat Score Results (CVE-2017-9805 RCE use case)\n\n")
	fmt.Fprintf(&sb, "%-20s %-4s %-3s %-3s %-3s %-3s %-6s %-8s %s\n",
		"Feature", "Xi", "R", "A", "T", "V", "Total", "Pi", "paper Xi")
	for _, f := range res.Features {
		if !f.Present {
			fmt.Fprintf(&sb, "%-20s %-4s (empty — discarded from the analysis)\n", f.Name, "—")
			continue
		}
		fmt.Fprintf(&sb, "%-20s %-4.0f %-3d %-3d %-3d %-3d %-6d %-8.4f %.0f\n",
			f.Name, f.Value,
			f.Points.Relevance, f.Points.Accuracy, f.Points.Timeliness,
			f.Points.Variety, f.Points.Total(), f.Weight, paperXi[f.Name])
	}
	fmt.Fprintf(&sb, "\nCp = %d/%d = %.4f\n", res.PresentCount(), len(res.Features), res.Completeness)
	fmt.Fprintf(&sb, "Σ Xi·Pi = %.4f\n", res.WeightedSum)
	fmt.Fprintf(&sb, "TS (ours, exact Pi)        = %.4f\n", res.Score)
	sb.WriteString("TS (paper, 4-decimal Pi)   = 2.7406\n")
	sb.WriteString("difference is the paper's Pi rounding (see EXPERIMENTS.md)\n")
	return sb.String(), nil
}

// Scenario is a fully wired platform reproducing the §IV use case: the
// paper inventory, the Struts advisory arriving from an OSINT feed, and a
// pair of illustrative alarms.
type Scenario struct {
	Platform *core.Platform
}

// NewScenario builds and runs the use-case pipeline once.
func NewScenario() (*Scenario, error) {
	advisory := `[{
	  "cve": "CVE-2017-9805",
	  "description": "Apache Struts REST plugin XStream RCE via crafted POST body",
	  "cvss3": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
	  "products": ["apache struts", "apache"],
	  "os": "debian",
	  "published": "2017-09-13",
	  "references": ["https://capec.mitre.example/248", "https://cve.mitre.example/CVE-2017-9805"]
	}]`
	p, err := core.New(core.Config{
		Clock: clock.NewFake(EvalTime),
		Feeds: []feed.Feed{{
			Name:     "vuln-advisories",
			Category: normalize.CategoryVulnExploit,
			Fetcher:  &feed.StaticFetcher{Data: []byte(advisory)},
			Parser:   feed.AdvisoryParser{},
			Interval: time.Hour,
		}},
		ShareTAXII: true,
	})
	if err != nil {
		return nil, err
	}
	// Alarms as on the paper's dashboard screenshots.
	alarms := []infra.Alarm{
		{NodeID: "node1", Severity: infra.SeverityHigh, SrcIP: "198.51.100.9", DstIP: "10.0.0.11", Description: "brute force against owncloud login", Application: "owncloud"},
		{NodeID: "node1", Severity: infra.SeverityLow, SrcIP: "198.51.100.10", DstIP: "10.0.0.11", Description: "ping sweep"},
		{NodeID: "node3", Severity: infra.SeverityMedium, SrcIP: "203.0.113.44", DstIP: "10.0.0.13", Description: "suspicious php upload", Application: "php"},
	}
	for _, a := range alarms {
		if _, err := p.ReportAlarm(a); err != nil {
			p.Close()
			return nil, err
		}
	}
	if err := p.RunBatch(context.Background()); err != nil {
		p.Close()
		return nil, err
	}
	return &Scenario{Platform: p}, nil
}

// Close releases the scenario's platform.
func (s *Scenario) Close() error { return s.Platform.Close() }

// RenderFig2 prints the dashboard topology view.
func (s *Scenario) RenderFig2() string {
	return "Fig. 2 — Platform dashboard (topology with alarm circles and rIoC stars)\n\n" +
		s.Platform.Dashboard().RenderTopology()
}

// RenderFig3 prints the node-detail view for the affected node.
func (s *Scenario) RenderFig3() (string, error) {
	node := s.Platform.Collector().Inventory().Node("node4")
	if node == nil {
		return "", fmt.Errorf("experiments: node4 missing")
	}
	riocs := s.Platform.Dashboard().RIoCsForNode("node4")
	var sb strings.Builder
	sb.WriteString("Fig. 3 — Node Visualization Data (node4)\n\n")
	fmt.Fprintf(&sb, "type:     %s\n", node.Type)
	fmt.Fprintf(&sb, "os:       %s\n", node.OS)
	fmt.Fprintf(&sb, "ips:      %s\n", strings.Join(node.IPs, ", "))
	fmt.Fprintf(&sb, "networks: %s\n", strings.Join(node.Networks, ", "))
	fmt.Fprintf(&sb, "alarms:   %d\n", len(s.Platform.Collector().AlarmsForNode("node4")))
	fmt.Fprintf(&sb, "riocs:    %d\n", len(riocs))
	return sb.String(), nil
}

// RenderFig4 prints the rIoC detail card.
func (s *Scenario) RenderFig4() (string, error) {
	riocs := s.Platform.Dashboard().RIoCs()
	if len(riocs) == 0 {
		return "", fmt.Errorf("experiments: no rIoC generated")
	}
	r := riocs[0]
	var sb strings.Builder
	sb.WriteString("Fig. 4 — Security Issues Detailed Information (rIoC)\n\n")
	fmt.Fprintf(&sb, "cve:          %s\n", r.CVE)
	fmt.Fprintf(&sb, "description:  %s\n", r.Description)
	affected := strings.Join(r.NodeIDs, ", ")
	if r.AllNodes {
		affected = "all nodes"
	}
	fmt.Fprintf(&sb, "affected:     %s (application: %s)\n", affected, r.Application)
	fmt.Fprintf(&sb, "threat score: %.4f (%s priority)\n", r.ThreatScore, r.Priority)
	return sb.String(), nil
}

// ReductionPoint is one row of the information-reduction experiment.
type ReductionPoint struct {
	DuplicationRate float64 `json:"duplication_rate"`
	EventsCollected int     `json:"events_collected"`
	EventsUnique    int     `json:"events_unique"`
	Reduction       float64 `json:"reduction"`
}

// DedupSweep measures the deduplicator's reduction across duplication
// rates — the abstract's "decreasing the amount of information" claim made
// measurable.
func DedupSweep(rates []float64, items int) ([]ReductionPoint, error) {
	var out []ReductionPoint
	for _, rate := range rates {
		gen := feedgen.New(feedgen.Config{
			Seed: 1234, Items: items,
			DuplicationRate: rate, OverlapRate: rate / 2,
		})
		feeds, err := gen.Feeds(time.Hour)
		if err != nil {
			return nil, err
		}
		d := dedup.New()
		sched := feed.NewScheduler(func(e normalize.Event) { d.Offer(e) })
		for _, f := range feeds {
			if err := sched.Add(f); err != nil {
				return nil, err
			}
		}
		sched.PollOnce(context.Background())
		st := d.Stats()
		out = append(out, ReductionPoint{
			DuplicationRate: rate,
			EventsCollected: st.Seen,
			EventsUnique:    st.Unique,
			Reduction:       st.ReductionRatio(),
		})
	}
	return out, nil
}

// SizeReduction compares the serialized size and attribute count of the
// eIoC against its rIoC for the use case — the rationale for sending only
// rIoCs to the dashboard (§III).
type SizeReduction struct {
	EIoCBytes      int     `json:"eioc_bytes"`
	RIoCBytes      int     `json:"rioc_bytes"`
	ByteReduction  float64 `json:"byte_reduction"`
	EIoCAttributes int     `json:"eioc_attributes"`
	RIoCFields     int     `json:"rioc_fields"`
}

// MeasureSizeReduction runs the use case and sizes eIoC vs rIoC.
func MeasureSizeReduction() (*SizeReduction, error) {
	s, err := NewScenario()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	events, err := s.Platform.TIP().Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil || len(events) == 0 {
		return nil, fmt.Errorf("experiments: eIoC missing: %v", err)
	}
	eiocJSON, err := misp.MarshalWrapped(events[0])
	if err != nil {
		return nil, err
	}
	riocs := s.Platform.Dashboard().RIoCs()
	if len(riocs) == 0 {
		return nil, fmt.Errorf("experiments: rIoC missing")
	}
	riocJSON, err := riocs[0].JSON()
	if err != nil {
		return nil, err
	}
	var riocFields map[string]any
	if err := json.Unmarshal(riocJSON, &riocFields); err != nil {
		return nil, err
	}
	return &SizeReduction{
		EIoCBytes:      len(eiocJSON),
		RIoCBytes:      len(riocJSON),
		ByteReduction:  1 - float64(len(riocJSON))/float64(len(eiocJSON)),
		EIoCAttributes: len(events[0].Attributes),
		RIoCFields:     len(riocFields),
	}, nil
}

// RenderReduction prints the X1 experiment.
func RenderReduction() (string, error) {
	var sb strings.Builder
	sb.WriteString("X1 — Information reduction\n\n")
	sb.WriteString("Deduplication sweep (6 synthetic feeds, per-feed duplication rate):\n")
	points, err := DedupSweep([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}, 300)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "%-10s %-10s %-10s %s\n", "dup rate", "collected", "unique", "reduction")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-10.1f %-10d %-10d %.1f%%\n",
			p.DuplicationRate, p.EventsCollected, p.EventsUnique, p.Reduction*100)
	}
	size, err := MeasureSizeReduction()
	if err != nil {
		return "", err
	}
	sb.WriteString("\neIoC → rIoC reduction (use case):\n")
	fmt.Fprintf(&sb, "eIoC: %d bytes (%d attributes); rIoC: %d bytes (%d fields); %.1f%% smaller\n",
		size.EIoCBytes, size.EIoCAttributes, size.RIoCBytes, size.RIoCFields,
		size.ByteReduction*100)
	return sb.String(), nil
}

// RenderDetection runs the X3 experiment (§VI future work): detection,
// false-positive and false-negative rates of the context-aware score
// against the no-context ablation and the static CVSS baseline, plus a
// threshold sweep of the context-aware strategy.
func RenderDetection() (string, error) {
	metrics, err := detecteval.Compare(11, 400, 2.7)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString(detecteval.Render(
		"X3 — Detection / FP / FN comparison (400 labelled advisories, TS threshold 2.70)", metrics))
	sweep, err := detecteval.ThresholdSweep(11, 400, []float64{2.3, 2.5, 2.7, 2.9})
	if err != nil {
		return "", err
	}
	sb.WriteString("\n")
	sb.WriteString(detecteval.Render("Context-aware threshold sweep (same corpus)", sweep))
	return sb.String(), nil
}

// RenderAll prints every artifact in order.
func RenderAll() (string, error) {
	var parts []string
	t1, err := RenderTableI()
	if err != nil {
		return "", err
	}
	parts = append(parts, t1, RenderTableII(), RenderTableIII(), RenderTableIV())
	t5, err := RenderTableV()
	if err != nil {
		return "", err
	}
	parts = append(parts, t5)
	s, err := NewScenario()
	if err != nil {
		return "", err
	}
	defer s.Close()
	parts = append(parts, s.RenderFig2())
	f3, err := s.RenderFig3()
	if err != nil {
		return "", err
	}
	f4, err := s.RenderFig4()
	if err != nil {
		return "", err
	}
	parts = append(parts, f3, f4)
	red, err := RenderReduction()
	if err != nil {
		return "", err
	}
	parts = append(parts, red)
	det, err := RenderDetection()
	if err != nil {
		return "", err
	}
	parts = append(parts, det)
	return strings.Join(parts, "\n"+strings.Repeat("─", 72)+"\n\n"), nil
}

// SortedFeedNames is a small helper used by the CLI output.
func SortedFeedNames(stats map[string]feed.Stats) []string {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
