package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"H1": 3.15, "H2": 1.92, "H3": 1.90}
	for _, r := range rows {
		if math.Abs(r.TS-want[r.Name]) > 1e-9 {
			t.Errorf("%s: TS = %v, want %v", r.Name, r.TS, want[r.Name])
		}
	}
	text, err := RenderTableI()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "MISMATCH") {
		t.Fatalf("Table I rendering reports mismatch:\n%s", text)
	}
}

func TestTableIIListsSixHeuristics(t *testing.T) {
	text := RenderTableII()
	for _, typ := range []string{
		"attack-pattern", "identity", "indicator", "malware", "tool", "vulnerability",
	} {
		if !strings.Contains(text, typ) {
			t.Errorf("Table II missing %s:\n%s", typ, text)
		}
	}
}

func TestTableIIIMatchesPaperInventory(t *testing.T) {
	text := RenderTableIII()
	for _, want := range []string{"OwnCloud", "GitLab", "XL-SIEM", "apache storm", "linux"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table III missing %q:\n%s", want, text)
		}
	}
}

func TestTableVMatchesPaper(t *testing.T) {
	res, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 2.7407 {
		t.Fatalf("TS = %v, want 2.7407 (paper: 2.7406 with rounded Pi)", res.Score)
	}
	if math.Abs(res.Completeness-8.0/9.0) > 1e-9 {
		t.Fatalf("Cp = %v, want 8/9", res.Completeness)
	}
	text, err := RenderTableV()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2.7406", "2.7407", "Cp = 8/9"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table V rendering missing %q:\n%s", want, text)
		}
	}
}

func TestScenarioReproducesUseCaseEndToEnd(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	riocs := s.Platform.Dashboard().RIoCs()
	if len(riocs) != 1 {
		t.Fatalf("riocs = %d, want 1", len(riocs))
	}
	r := riocs[0]
	if r.CVE != "CVE-2017-9805" {
		t.Fatalf("cve = %q", r.CVE)
	}
	// The pipeline-computed score equals the paper's use-case score: the
	// advisory supplies the same features the paper extracted by hand.
	if r.ThreatScore != 2.7407 {
		t.Fatalf("pipeline TS = %v, want 2.7407", r.ThreatScore)
	}
	if len(r.NodeIDs) != 1 || r.NodeIDs[0] != "node4" {
		t.Fatalf("affected nodes = %v, want [node4]", r.NodeIDs)
	}
}

func TestFigureRenderings(t *testing.T) {
	s, err := NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fig2 := s.RenderFig2()
	// node1 has 1 red + 1 green alarm; node4 has the rIoC star.
	if !strings.Contains(fig2, "node1") || !strings.Contains(fig2, "★ 1") {
		t.Fatalf("fig 2 unexpected:\n%s", fig2)
	}
	fig3, err := s.RenderFig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"debian", "LAN, WAN", "riocs:    1"} {
		if !strings.Contains(fig3, want) {
			t.Errorf("fig 3 missing %q:\n%s", want, fig3)
		}
	}
	fig4, err := s.RenderFig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CVE-2017-9805", "node4", "2.7407", "medium"} {
		if !strings.Contains(fig4, want) {
			t.Errorf("fig 4 missing %q:\n%s", want, fig4)
		}
	}
}

func TestDedupSweepMonotone(t *testing.T) {
	points, err := DedupSweep([]float64{0, 0.25, 0.5}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Reduction must increase with the duplication rate.
	if !(points[0].Reduction < points[1].Reduction && points[1].Reduction < points[2].Reduction) {
		t.Fatalf("reduction not monotone: %+v", points)
	}
	if points[2].Reduction < 0.25 {
		t.Fatalf("50%% duplication gave only %.2f reduction", points[2].Reduction)
	}
}

func TestSizeReduction(t *testing.T) {
	size, err := MeasureSizeReduction()
	if err != nil {
		t.Fatal(err)
	}
	if size.RIoCBytes >= size.EIoCBytes {
		t.Fatalf("rIoC (%d B) not smaller than eIoC (%d B)", size.RIoCBytes, size.EIoCBytes)
	}
	if size.ByteReduction <= 0 {
		t.Fatalf("byte reduction = %v", size.ByteReduction)
	}
}

func TestRenderAll(t *testing.T) {
	text, err := RenderAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV", "Table V", "Fig. 2", "Fig. 3", "Fig. 4", "X1"} {
		if !strings.Contains(text, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
}

func TestRenderDetection(t *testing.T) {
	text, err := RenderDetection()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"X3", "context-aware", "static CVSS", "threshold sweep"} {
		if !strings.Contains(text, want) {
			t.Errorf("detection rendering missing %q", want)
		}
	}
}
