package mesh

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

var now = time.Date(2019, 6, 24, 12, 0, 0, 0, time.UTC)

// newNode is one in-process TIP instance: the mesh engine is exercised
// against the real service + store stack, only the HTTP hop is elided.
func newNode(t *testing.T) *tip.Service {
	t.Helper()
	store, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return tip.NewService(store)
}

// svcRemote adapts a local service into the Remote pull surface, the
// in-process stand-in for tip.Client.
type svcRemote struct{ svc *tip.Service }

func (r svcRemote) ChangesPage(_ context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	return r.svc.ChangesPage(afterSeq, limit)
}

func sampleEvents(t *testing.T, n int) []*misp.Event {
	t.Helper()
	out := make([]*misp.Event, n)
	for i := range out {
		e := misp.NewEvent(fmt.Sprintf("evt-%d", i), now)
		e.AddAttribute("domain", "Network activity", fmt.Sprintf("h%d.example", i), now)
		out[i] = e
	}
	return out
}

func newEngine(t *testing.T, local *tip.Service, cursors CursorStore, peers map[string]*tip.Service, opts ...Option) *Engine {
	t.Helper()
	var ps []Peer
	for name, svc := range peers {
		ps = append(ps, Peer{Name: name, Remote: svcRemote{svc}})
	}
	e, err := New(local, ps, cursors, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestRingConvergesWithoutEchoes(t *testing.T) {
	// Three nodes in a pull ring: a <- c <- b <- a. All events share one
	// timestamp — the worst case for time cursors, routine for the seq
	// feed.
	a, b, c := newNode(t), newNode(t), newNode(t)
	if _, err := a.AddEvents(sampleEvents(t, 120)); err != nil {
		t.Fatal(err)
	}
	ea := newEngine(t, a, nil, map[string]*tip.Service{"c": c})
	eb := newEngine(t, b, nil, map[string]*tip.Service{"a": a})
	ec := newEngine(t, c, nil, map[string]*tip.Service{"b": b})
	engines := []*Engine{ea, eb, ec}

	for round := 0; round < 10; round++ {
		for _, e := range engines {
			if _, err := e.SyncOnce(t.Context()); err != nil {
				t.Fatal(err)
			}
		}
		if a.Len() == 120 && b.Len() == 120 && c.Len() == 120 {
			break
		}
	}
	if a.Len() != 120 || b.Len() != 120 || c.Len() != 120 {
		t.Fatalf("no convergence: a=%d b=%d c=%d", a.Len(), b.Len(), c.Len())
	}

	// Steady state: more rounds import nothing; the copies coming back
	// around the ring are counted as suppressed echoes, not conflicts.
	before := ea.Totals().Imported + eb.Totals().Imported + ec.Totals().Imported
	for round := 0; round < 3; round++ {
		for _, e := range engines {
			if _, err := e.SyncOnce(t.Context()); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := ea.Totals().Imported + eb.Totals().Imported + ec.Totals().Imported
	if after != before {
		t.Fatalf("steady-state re-imports: %d", after-before)
	}
	if echoes := ea.Totals().EchoSuppressed; echoes == 0 {
		t.Fatal("origin node counted no suppressed echoes")
	}
	if conf := ea.Totals().ConflictLocal + ea.Totals().ConflictRemote; conf != 0 {
		t.Fatalf("echoes misclassified as %d conflicts", conf)
	}
}

func TestConflictNewestTimestampWins(t *testing.T) {
	a, b := newNode(t), newNode(t)
	orig := sampleEvents(t, 1)[0]
	if _, err := a.AddEvents([]*misp.Event{orig}); err != nil {
		t.Fatal(err)
	}
	edited := orig.Clone()
	edited.Info = "edited"
	edited.Timestamp = misp.UT(now.Add(2 * time.Second))
	if _, err := b.AddEvents([]*misp.Event{edited}); err != nil {
		t.Fatal(err)
	}

	// a pulls b: remote revision is newer, the edit replaces the local.
	ea := newEngine(t, a, nil, map[string]*tip.Service{"b": b})
	if _, err := ea.SyncOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	got, err := a.GetEvent(orig.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info != "edited" || got.Timestamp.Unix() != edited.Timestamp.Unix() {
		t.Fatalf("newer remote revision did not win: %q @%d", got.Info, got.Timestamp.Unix())
	}
	if ea.Totals().ConflictRemote != 1 {
		t.Fatalf("conflict(remote) = %d, want 1", ea.Totals().ConflictRemote)
	}

	// b pulls a: a's feed now serves the same revision b already has —
	// an echo; and a stale older revision must never claw back.
	eb := newEngine(t, b, nil, map[string]*tip.Service{"a": a})
	if _, err := eb.SyncOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	got, err = b.GetEvent(orig.UUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Info != "edited" {
		t.Fatalf("stale revision clawed back: %q", got.Info)
	}
	if eb.Totals().ConflictLocal != 0 || eb.Totals().EchoSuppressed == 0 {
		t.Fatalf("totals = %+v, want the round-trip counted as echo", eb.Totals())
	}
}

// failingLocal passes through to the real service but fails the
// failOn-th AddEvents call (1-based), modeling a node whose store
// rejects a batch mid-sync.
type failingLocal struct {
	svc    *tip.Service
	calls  atomic.Int32
	failOn int32
}

func (f *failingLocal) AddEvents(events []*misp.Event) ([]*misp.Event, error) {
	if f.calls.Add(1) == f.failOn {
		return nil, errors.New("injected import failure")
	}
	return f.svc.AddEvents(events)
}

func (f *failingLocal) GetEvent(uuid string) (*misp.Event, error) { return f.svc.GetEvent(uuid) }

func TestFailedImportResumesFromDurableCursorWithoutDuplicates(t *testing.T) {
	source, sink := newNode(t), newNode(t)
	if _, err := source.AddEvents(sampleEvents(t, 10)); err != nil {
		t.Fatal(err)
	}
	cursors := NewFileCursors(t.TempDir() + "/cursors.json")
	local := &failingLocal{svc: sink, failOn: 2} // page 2 of the first sync dies

	run := func() (*Engine, error) {
		e, err := New(local, []Peer{{Name: "src", Remote: svcRemote{source}}}, cursors,
			WithPageSize(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		_, serr := e.SyncOnce(t.Context())
		return e, serr
	}

	// First engine lifetime: page 1 (4 events) lands, page 2 fails — the
	// cursor must stay at page 1's high-water mark.
	e1, err := run()
	if err == nil {
		t.Fatal("expected the injected import failure")
	}
	if got := e1.Totals().Imported; got != 4 {
		t.Fatalf("imported %d before the failure, want 4", got)
	}
	if sink.Len() != 4 {
		t.Fatalf("sink holds %d events, want 4", sink.Len())
	}

	// Second lifetime (fresh engine, same sidecar — a daemon restart):
	// resumes from the durable cursor, pulls only the missing 6, and
	// nothing is imported twice.
	e2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 10 {
		t.Fatalf("sink holds %d events after resume, want 10", sink.Len())
	}
	tt := e2.Totals()
	if tt.Imported != 6 || tt.Pulled != 6 || tt.EchoSuppressed != 0 {
		t.Fatalf("resume pulled=%d imported=%d echoes=%d, want exactly the missing 6",
			tt.Pulled, tt.Imported, tt.EchoSuppressed)
	}
}

func TestBadPeerConfigRejected(t *testing.T) {
	svc := newNode(t)
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil local accepted")
	}
	if _, err := New(svc, []Peer{{Name: "", Remote: svcRemote{svc}}}, nil); err == nil {
		t.Fatal("unnamed peer accepted")
	}
	dup := []Peer{
		{Name: "p", Remote: svcRemote{svc}},
		{Name: "p", Remote: svcRemote{svc}},
	}
	if _, err := New(svc, dup, nil); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// slowRemote serves a fixed backlog with a simulated per-request link
// latency — the WAN model for the serial-vs-concurrent benchmark.
type slowRemote struct {
	events  []*misp.Event
	latency time.Duration
}

func (r slowRemote) ChangesPage(ctx context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	select {
	case <-time.After(r.latency):
	case <-ctx.Done():
		return nil, afterSeq, false, ctx.Err()
	}
	i := int(afterSeq)
	if i >= len(r.events) {
		return nil, afterSeq, false, nil
	}
	end := min(i+limit, len(r.events))
	return r.events[i:end], uint64(end), end < len(r.events), nil
}

// discardLocal imports into the void: the benchmark isolates sync
// orchestration and transfer latency from store write costs.
type discardLocal struct{}

func (discardLocal) AddEvents(events []*misp.Event) ([]*misp.Event, error) { return events, nil }
func (discardLocal) GetEvent(string) (*misp.Event, error) {
	return nil, errors.New("not held")
}

func benchmarkFanIn(b *testing.B, opts ...Option) {
	events := make([]*misp.Event, 2000)
	for i := range events {
		events[i] = misp.NewEvent(fmt.Sprintf("evt-%d", i), now)
	}
	var peers []Peer
	for p := 0; p < 8; p++ {
		peers = append(peers, Peer{
			Name:   fmt.Sprintf("peer%d", p),
			Remote: slowRemote{events: events, latency: 2 * time.Millisecond},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(discardLocal{}, peers, nil, append([]Option{WithPageSize(500, 500)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.SyncOnce(context.Background()); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

func BenchmarkFanInConcurrent(b *testing.B) { benchmarkFanIn(b) }
func BenchmarkFanInSerial(b *testing.B)     { benchmarkFanIn(b, WithSerialSync()) }
