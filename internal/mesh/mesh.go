// Package mesh is the platform's federation engine: it turns a set of
// independent TIP nodes into an N-node anti-entropy mesh, the multi-peer
// replacement for the one-shot serial tip.SyncFrom. This is the paper's
// Output Module grown horizontal — org-to-org intelligence exchange
// between peer MISP-like instances (§IV-A) at replication speeds that
// keep up with ingest.
//
// Each configured peer gets its own sync worker goroutine that pulls the
// peer's paginated ingest-sequence change feed (GET /events/changes) on
// a jittered interval, with exponential backoff while the peer is down.
// Workers run concurrently under a bounded semaphore, so a 16-peer node
// catches up against all peers at once instead of one at a time
// (WithSerialSync is the measured ablation). The hot path is loss-free
// and echo-free:
//
//   - Sound cursors: replication pages over the peer's local ingest
//     sequence, not event modification time. A (timestamp, uuid) cursor
//     is unsound on a mesh — when the peer imports an event late (from a
//     third node) with an equal or older timestamp, it lands *behind* an
//     already-advanced time cursor and is never served again. On the
//     seq feed a late import always lands at the tail, past every
//     cursor already handed out.
//   - Durable cursors: every synced page advances a per-peer sequence
//     high-water mark persisted through a CursorStore, so a restarted
//     node resumes where it stopped instead of re-pulling history. A
//     page whose import fails outright does not advance the cursor —
//     the events are re-pulled next round.
//   - Echo suppression: before importing, each pulled event is checked
//     against the local store by UUID + timestamp. An event the node
//     already owns at the same or newer timestamp is skipped, so A→B→A
//     round-trips re-import nothing and trigger no re-analysis.
//   - Conflict resolution: concurrent edits of the same (cluster) UUID
//     resolve newest-timestamp-wins — a strictly newer remote revision
//     replaces the local one through the store's edit path, a strictly
//     older one is dropped. Ties keep the local copy.
//   - Deletion replication: tombstoned UUIDs on the change feed
//     (expired or retracted indicators) are applied locally at their
//     original deletion time, again newest-wins — a local edit strictly
//     newer than the deletion survives it. Peers that predate the
//     tombstone wire format fall back to the events-only feed.
//   - Batch import: pages land through the service's group-committed
//     AddEvents, so replication rides the same 10.9× durable batch path
//     as local ingest, and the page size adapts upward (doubling to
//     MaxPage) while full pages keep coming.
package mesh

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
)

// Local is the importing side of the engine: the node's own TIP service.
// *tip.Service satisfies it.
type Local interface {
	// AddEvents imports a batch through the group-commit path and
	// returns the events actually stored.
	AddEvents(events []*misp.Event) ([]*misp.Event, error)
	// GetEvent returns the locally stored revision of uuid, or an error
	// when the node does not hold it.
	GetEvent(uuid string) (*misp.Event, error)
}

// Remote is one peer's paginated pull surface: its ingest-sequence
// change feed. *tip.Client satisfies it.
type Remote interface {
	ChangesPage(ctx context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error)
}

// DeletionRemote is a Remote whose change feed also carries deletion
// tombstones (*tip.Client satisfies it). When a peer's remote
// implements it and the local side can delete, the engine pulls the
// tombstone-bearing feed and replicates deletions; otherwise it falls
// back to the events-only ChangesPage.
type DeletionRemote interface {
	Remote
	Changes(ctx context.Context, afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error)
}

// DeletionLocal is a Local that can apply a replicated deletion at its
// original deletion time (*tip.Service satisfies it).
type DeletionLocal interface {
	DeleteEventAt(uuid string, at time.Time) error
}

// Peer names one replication source.
type Peer struct {
	// Name keys the peer's durable cursor and metric labels. It must be
	// unique and stable across restarts.
	Name   string
	Remote Remote
}

// Defaults for Engine tuning knobs.
const (
	DefaultInterval   = 30 * time.Second
	DefaultBackoffMin = time.Second
	DefaultBackoffMax = 5 * time.Minute
	// DefaultBasePage is the starting pull page size; full pages double
	// it up to DefaultMaxPage. The raised ceiling (vs SyncFrom's fixed
	// 500) amortizes HTTP and JSON overhead during catch-up, and gzip
	// keeps the larger pages cheap on the wire.
	DefaultBasePage = 500
	DefaultMaxPage  = 5000
)

// Totals are the engine's lifetime counters, also exported as
// caisp_mesh_* metric families when a registry is attached.
type Totals struct {
	Pages          int64 // pages pulled across all peers
	Pulled         int64 // events received from peers
	Imported       int64 // events actually imported (stored)
	EchoSuppressed int64 // already-owned events skipped (same timestamp)
	ConflictLocal  int64 // concurrent edits resolved keeping the local copy
	ConflictRemote int64 // concurrent edits resolved importing the remote copy
	Deleted        int64 // replicated deletions applied to the local store
	Errors         int64 // failed sync attempts (transport or import)
	Rounds         int64 // completed sync rounds (one peer drained to head)
}

// Engine drives continuous anti-entropy pull replication against the
// configured peers.
type Engine struct {
	local    Local
	localDel DeletionLocal // nil when local cannot apply deletions
	cursors  CursorStore
	peers    []*peerState

	interval   time.Duration
	backoffMin time.Duration
	backoffMax time.Duration
	basePage   int
	maxPage    int
	workers    int
	logger     *slog.Logger

	sem chan struct{} // bounds concurrent per-peer syncs

	mu  sync.Mutex // guards cur
	cur map[string]Cursor

	pages          atomic.Int64
	pulled         atomic.Int64
	imported       atomic.Int64
	echoSuppressed atomic.Int64
	conflictLocal  atomic.Int64
	conflictRemote atomic.Int64
	deleted        atomic.Int64
	errorsN        atomic.Int64
	rounds         atomic.Int64

	// metric families; nil without WithMetrics.
	mPages       *obs.CounterVec // {peer}
	mPulled      *obs.CounterVec // {peer}
	mImported    *obs.CounterVec // {peer}
	mEcho        *obs.CounterVec // {peer}
	mConflicts   *obs.CounterVec // {peer, winner}
	mDeleted     *obs.CounterVec // {peer}
	mErrors      *obs.CounterVec // {peer}
	mSync        *obs.Histogram  // sync round latency
	mLag         *obs.GaugeVec   // {peer} seconds behind the peer head
	mBackoff     *obs.GaugeVec   // {peer} current backoff, 0 when healthy
	mLastSuccess *obs.GaugeVec   // {peer} unix time of last drained round
	mHopLat      *obs.HistogramVec // {peer} single-hop replication latency
	mRepl        *obs.Histogram    // origin-to-here end-to-end latency

	// cross-node trace propagation; zero-valued without WithProvenance.
	node   string         // this node's name, stamped into appended hops
	prov   *obs.ProvTable // provenance for events this node re-serves
	tracer *obs.Tracer    // receives per-import multi-hop trace records

	runCtx  context.Context
	cancel  context.CancelFunc
	stopped chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

// peerState is one peer's mutable sync state, touched only by the peer's
// worker (or by SyncOnce, which the engine serializes per peer).
type peerState struct {
	name   string
	remote Remote
	full   DeletionRemote // non-nil when the remote serves tombstones
	page   int            // adaptive page size
	busy   sync.Mutex     // serializes overlapping syncs of one peer

	// statMu guards the observability snapshot below, which PeerStatuses
	// reads concurrently with the worker.
	statMu      sync.Mutex
	backoff     time.Duration // 0 while healthy
	lastSuccess time.Time     // last fully drained round
	lastErr     string        // most recent sync error, "" while healthy
	failures    int64         // consecutive failed sync attempts
	lagSeconds  float64       // last published replication lag
}

// Option configures an Engine.
type Option func(*Engine)

// WithInterval sets the base poll interval; each worker jitters its
// actual sleep in [interval/2, 3·interval/2) so peers do not phase-lock.
func WithInterval(d time.Duration) Option {
	return func(e *Engine) { e.interval = d }
}

// WithBackoff bounds the exponential backoff applied while a peer fails.
func WithBackoff(min, max time.Duration) Option {
	return func(e *Engine) { e.backoffMin, e.backoffMax = min, max }
}

// WithPageSize sets the starting and maximum pull page size. Full pages
// double the size toward max; any sync error resets it to base.
func WithPageSize(base, max int) Option {
	return func(e *Engine) { e.basePage, e.maxPage = base, max }
}

// WithConcurrency bounds how many peers sync at once (default: all).
func WithConcurrency(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithSerialSync is the ablation baseline: one peer syncs at a time,
// the way serial SyncFrom loops over peers. Measured in EXPERIMENTS.md
// §X12 against the default concurrent pool.
func WithSerialSync() Option { return WithConcurrency(1) }

// WithLogger sets the engine logger.
func WithLogger(l *slog.Logger) Option {
	return func(e *Engine) {
		if l != nil {
			e.logger = l
		}
	}
}

// WithProvenance turns on cross-node trace propagation: every event the
// engine imports gets a hop stamped with this node's name and the pull
// time, and the accumulated provenance is recorded into table so the
// node's own change feed re-serves it to the next hop. node must match
// the name the local tip service serves under, or downstream origin-seq
// stamping misattributes events.
func WithProvenance(node string, table *obs.ProvTable) Option {
	return func(e *Engine) {
		e.node = node
		e.prov = table
	}
}

// WithTracer forwards each import's multi-hop provenance to tr, so the
// terminal node's GET /debug/traces shows the full replication path an
// event took across the mesh.
func WithTracer(tr *obs.Tracer) Option {
	return func(e *Engine) { e.tracer = tr }
}

// hopBuckets shapes the replication-latency histograms. Mesh hops are
// dominated by the poll interval (default 30s, jittered to 45s, plus
// backoff up to minutes), so the buckets reach well past DefBuckets'
// 10s ceiling.
var hopBuckets = []float64{.01, .05, .25, 1, 5, 15, 30, 60, 120, 300, 600}

// WithMetrics registers the caisp_mesh_* families on reg (nil disables).
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		if reg == nil {
			return
		}
		reg.GaugeFunc("caisp_mesh_peers",
			"Configured replication peers.",
			func() float64 { return float64(len(e.peers)) })
		e.mPages = reg.CounterVec("caisp_mesh_pages_total",
			"Pages pulled from each peer.", "peer")
		e.mPulled = reg.CounterVec("caisp_mesh_events_pulled_total",
			"Events received from each peer before suppression.", "peer")
		e.mImported = reg.CounterVec("caisp_mesh_events_imported_total",
			"Events imported into the local store from each peer.", "peer")
		e.mEcho = reg.CounterVec("caisp_mesh_echo_suppressed_total",
			"Already-owned events skipped without re-import or re-analysis.", "peer")
		e.mConflicts = reg.CounterVec("caisp_mesh_conflicts_total",
			"Concurrent edits of one UUID resolved newest-timestamp-wins.", "peer", "winner")
		e.mDeleted = reg.CounterVec("caisp_mesh_deletes_applied_total",
			"Replicated deletions applied to the local store per peer.", "peer")
		e.mErrors = reg.CounterVec("caisp_mesh_errors_total",
			"Failed sync attempts per peer (transport or import).", "peer")
		e.mSync = reg.Histogram("caisp_mesh_sync_seconds",
			"Wall time of one sync round: drain a peer's backlog to its head.")
		e.mLag = reg.GaugeVec("caisp_mesh_lag_seconds",
			"Replication lag per peer: age of the newest event pulled in the last drained round while healthy, seconds since the last success while the peer is failing.", "peer")
		e.mBackoff = reg.GaugeVec("caisp_mesh_backoff_seconds",
			"Current failure backoff per peer; zero while healthy.", "peer")
		e.mLastSuccess = reg.GaugeVec("caisp_mesh_last_success_unix_seconds",
			"Unix time of the last fully drained sync round per peer; zero until one succeeds.", "peer")
		e.mHopLat = reg.HistogramVec("caisp_mesh_hop_latency_seconds",
			"Single-hop replication latency: time between the upstream node pulling (or ingesting) an event and this node pulling it.", hopBuckets, "peer")
		e.mRepl = reg.Histogram("caisp_mesh_replication_seconds",
			"End-to-end replication latency: origin ingest to arrival at this node, any number of hops.", hopBuckets...)
	}
}

// New builds an engine over the local import surface and the given
// peers, loading durable cursors from cursors (NewMemCursors for a
// memory-only node). Call Start to begin replicating.
func New(local Local, peers []Peer, cursors CursorStore, opts ...Option) (*Engine, error) {
	if local == nil {
		return nil, errors.New("mesh: nil local service")
	}
	if cursors == nil {
		cursors = NewMemCursors()
	}
	e := &Engine{
		local:      local,
		cursors:    cursors,
		interval:   DefaultInterval,
		backoffMin: DefaultBackoffMin,
		backoffMax: DefaultBackoffMax,
		basePage:   DefaultBasePage,
		maxPage:    DefaultMaxPage,
		logger:     slog.Default(),
		stopped:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, p := range peers {
		if p.Name == "" || p.Remote == nil {
			return nil, fmt.Errorf("mesh: peer needs a name and a remote")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("mesh: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
		ps := &peerState{name: p.Name, remote: p.Remote}
		ps.full, _ = p.Remote.(DeletionRemote)
		e.peers = append(e.peers, ps)
	}
	e.localDel, _ = local.(DeletionLocal)
	for _, o := range opts {
		o(e)
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	if e.basePage <= 0 {
		e.basePage = DefaultBasePage
	}
	if e.maxPage < e.basePage {
		e.maxPage = e.basePage
	}
	if e.workers <= 0 || e.workers > len(e.peers) {
		e.workers = len(e.peers)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	for _, ps := range e.peers {
		ps.page = e.basePage
	}
	cur, err := e.cursors.Load()
	if err != nil {
		return nil, err
	}
	e.cur = cur
	e.sem = make(chan struct{}, e.workers)
	e.runCtx, e.cancel = context.WithCancel(context.Background())
	return e, nil
}

// Peers reports the configured peer count.
func (e *Engine) Peers() int { return len(e.peers) }

// Totals snapshots the lifetime counters.
func (e *Engine) Totals() Totals {
	return Totals{
		Pages:          e.pages.Load(),
		Pulled:         e.pulled.Load(),
		Imported:       e.imported.Load(),
		EchoSuppressed: e.echoSuppressed.Load(),
		ConflictLocal:  e.conflictLocal.Load(),
		ConflictRemote: e.conflictRemote.Load(),
		Deleted:        e.deleted.Load(),
		Errors:         e.errorsN.Load(),
		Rounds:         e.rounds.Load(),
	}
}

// Cursor returns the current high-water mark for a peer.
func (e *Engine) Cursor(peer string) Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur[peer]
}

func (e *Engine) setCursor(peer string, c Cursor) {
	e.mu.Lock()
	e.cur[peer] = c
	snapshot := make(map[string]Cursor, len(e.cur))
	for k, v := range e.cur {
		snapshot[k] = v
	}
	e.mu.Unlock()
	if err := e.cursors.Save(snapshot); err != nil {
		// A lost save costs a re-pulled suffix (idempotent via echo
		// suppression), never lost events — log and continue.
		e.logger.Warn("mesh: cursor save failed", "peer", peer, "error", err)
	}
}

// Start launches one sync worker per peer. It is a no-op the second time.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	for _, ps := range e.peers {
		e.wg.Add(1)
		go e.runPeer(ps)
	}
}

// Close stops the workers, waits for in-flight syncs to finish, and
// leaves the durable cursors at their latest high-water marks.
func (e *Engine) Close() {
	e.cancel()
	select {
	case <-e.stopped:
	default:
		close(e.stopped)
	}
	e.wg.Wait()
}

// runPeer is one peer's poll loop: jittered interval while healthy,
// exponential backoff while failing, bounded by the engine semaphore so
// at most `workers` peers sync concurrently.
func (e *Engine) runPeer(ps *peerState) {
	defer e.wg.Done()
	// Initial jitter staggers the fleet so N workers do not fire their
	// first pull at the same instant.
	timer := time.NewTimer(time.Duration(rand.Int63n(int64(e.interval)/2 + 1)))
	defer timer.Stop()
	for {
		select {
		case <-e.runCtx.Done():
			return
		case <-timer.C:
		}
		select {
		case e.sem <- struct{}{}:
		case <-e.runCtx.Done():
			return
		}
		_, err := e.syncPeer(e.runCtx, ps)
		<-e.sem
		next := e.jittered(e.interval)
		ps.statMu.Lock()
		if err != nil && e.runCtx.Err() == nil {
			if ps.backoff == 0 {
				ps.backoff = e.backoffMin
			} else if ps.backoff < e.backoffMax {
				ps.backoff *= 2
				if ps.backoff > e.backoffMax {
					ps.backoff = e.backoffMax
				}
			}
			next = e.jittered(ps.backoff)
			e.logger.Warn("mesh: sync failed", "peer", ps.name, "backoff", ps.backoff, "error", err)
		} else {
			ps.backoff = 0
		}
		backoff := ps.backoff
		ps.statMu.Unlock()
		if e.mBackoff != nil {
			e.mBackoff.With(ps.name).Set(backoff.Seconds())
		}
		timer.Reset(next)
	}
}

// jittered spreads d over [d/2, 3d/2) so poll rounds decorrelate.
func (e *Engine) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// SyncOnce drains every peer's backlog once, respecting the concurrency
// bound, and returns the total number of events imported. It is the
// synchronous form the poll workers drive continuously — also the hook
// meshload and tests use for deterministic rounds.
func (e *Engine) SyncOnce(ctx context.Context) (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		errs  []error
	)
	for _, ps := range e.peers {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return total, ctx.Err()
		}
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			defer func() { <-e.sem }()
			n, err := e.syncPeer(ctx, ps)
			mu.Lock()
			total += n
			if err != nil {
				errs = append(errs, fmt.Errorf("peer %s: %w", ps.name, err))
			}
			mu.Unlock()
		}(ps)
	}
	wg.Wait()
	return total, errors.Join(errs...)
}

// syncPeer drains one peer's backlog from the durable cursor to the
// peer's head: pull a page, suppress echoes, resolve conflicts, batch
// import, advance the cursor, repeat while pages remain.
func (e *Engine) syncPeer(ctx context.Context, ps *peerState) (int, error) {
	ps.busy.Lock()
	defer ps.busy.Unlock()
	start := time.Now()
	cur := e.Cursor(ps.name)
	imported := 0
	var newest time.Time // newest event timestamp pulled this round
	for {
		if err := ctx.Err(); err != nil {
			return imported, err
		}
		var (
			live    []storage.Change // entries with Event != nil, Prov attached when served
			deletes []storage.Change
			next    uint64
			more    bool
			err     error
		)
		if ps.full != nil && e.localDel != nil {
			// Tombstone-bearing feed: split the page into live revisions
			// and deletion markers, keeping each live entry's Change
			// wrapper so its provenance survives to import.
			var changes []storage.Change
			changes, next, more, err = ps.full.Changes(ctx, cur.Seq, ps.page)
			for _, ch := range changes {
				if ch.Event != nil {
					live = append(live, ch)
				} else {
					deletes = append(deletes, ch)
				}
			}
		} else {
			var events []*misp.Event
			events, next, more, err = ps.remote.ChangesPage(ctx, cur.Seq, ps.page)
			for _, ev := range events {
				live = append(live, storage.Change{UUID: ev.UUID, Event: ev})
			}
		}
		if err != nil {
			ps.page = e.basePage
			e.markFailure(ps, err)
			return imported, err
		}
		entries := len(live) + len(deletes)
		e.pages.Add(1)
		e.pulled.Add(int64(entries))
		if e.mPages != nil {
			e.mPages.With(ps.name).Inc()
			e.mPulled.With(ps.name).Add(int64(entries))
		}
		if len(live) > 0 {
			n, err := e.importPage(ps, live)
			imported += n
			if err != nil {
				// Nothing from this page landed: do not advance the
				// cursor, the page is re-pulled after backoff.
				ps.page = e.basePage
				e.markFailure(ps, err)
				return imported, err
			}
			if ts := live[len(live)-1].Event.Timestamp.Time; ts.After(newest) {
				newest = ts
			}
		}
		if len(deletes) > 0 {
			if err := e.applyDeletes(ps, deletes); err != nil {
				ps.page = e.basePage
				e.markFailure(ps, err)
				return imported, err
			}
		}
		if next > cur.Seq {
			// The peer scanned up to next even when every entry there was
			// stale; advancing past those entries is loss-free because a
			// re-put always reappears later in the feed.
			cur = Cursor{Seq: next}
			e.setCursor(ps.name, cur)
		}
		// Adaptive sizing: a full page means backlog — double toward the
		// ceiling so catch-up takes fewer round-trips.
		if entries == ps.page && ps.page < e.maxPage {
			ps.page *= 2
			if ps.page > e.maxPage {
				ps.page = e.maxPage
			}
		}
		if !more {
			break
		}
	}
	e.rounds.Add(1)
	if e.mSync != nil {
		e.mSync.Observe(time.Since(start).Seconds())
	}
	// Drained to the peer's head: lag is how stale the newest event
	// pulled this round was on arrival, zero when already caught up.
	lag := 0.0
	if !newest.IsZero() {
		lag = time.Since(newest).Seconds()
	}
	e.markSuccess(ps, lag)
	return imported, nil
}

// markSuccess publishes one drained round: the peer is healthy, its lag
// is the freshness of what the round pulled, and the last-success clock
// restarts. This is the only healthy path that touches the lag gauge —
// a failed round must not leave the previous round's value standing, so
// markFailure republishes it as time-since-last-success instead.
func (e *Engine) markSuccess(ps *peerState, lag float64) {
	now := time.Now()
	ps.statMu.Lock()
	ps.lastSuccess = now
	ps.failures = 0
	ps.lastErr = ""
	ps.lagSeconds = lag
	ps.statMu.Unlock()
	if e.mLag != nil {
		e.mLag.With(ps.name).Set(lag)
	}
	if e.mLastSuccess != nil {
		e.mLastSuccess.With(ps.name).Set(float64(now.Unix()))
	}
}

// markFailure records one failed sync attempt and republishes the lag
// gauge as seconds since the last successful round, so a dead peer's
// lag grows instead of freezing at its last healthy reading.
func (e *Engine) markFailure(ps *peerState, err error) {
	e.errorsN.Add(1)
	if e.mErrors != nil {
		e.mErrors.With(ps.name).Inc()
	}
	var lag float64
	ps.statMu.Lock()
	ps.failures++
	ps.lastErr = err.Error()
	if !ps.lastSuccess.IsZero() {
		lag = time.Since(ps.lastSuccess).Seconds()
		ps.lagSeconds = lag
	}
	ps.statMu.Unlock()
	if e.mLag != nil && lag > 0 {
		e.mLag.With(ps.name).Set(lag)
	}
}

// importPage filters one pulled page against the local store and batch
// imports what remains. The error is non-nil only when the whole batch
// failed to land (the caller then refuses to advance the cursor);
// per-event validation rejections are logged and skipped, matching
// AddEvents' partial-failure tolerance. Each entry's Event is non-nil;
// its Prov, when the peer serves provenance, rides through to the
// engine's table with this node's hop appended.
func (e *Engine) importPage(ps *peerState, changes []storage.Change) (int, error) {
	fresh := make([]*misp.Event, 0, len(changes))
	prov := make(map[string]*obs.Provenance, len(changes))
	for _, ch := range changes {
		ev := ch.Event
		if ch.Prov != nil {
			prov[ev.UUID] = ch.Prov
		}
		local, err := e.local.GetEvent(ev.UUID)
		if err == nil {
			// Already own this UUID: newest timestamp wins. Compare at
			// Unix-second (wire) granularity — the local original may keep
			// sub-second precision its round-tripped copy lost, and that
			// precision difference is not an edit.
			switch lts, rts := local.Timestamp.Unix(), ev.Timestamp.Unix(); {
			case lts == rts:
				// The echo case — our own event coming back around the
				// mesh (A→B→A) or a copy both sides already replicated.
				e.echoSuppressed.Add(1)
				if e.mEcho != nil {
					e.mEcho.With(ps.name).Inc()
				}
				continue
			case lts > rts:
				// Local revision is newer: drop the stale remote copy.
				e.conflictLocal.Add(1)
				if e.mConflicts != nil {
					e.mConflicts.With(ps.name, "local").Inc()
				}
				continue
			default:
				// Remote revision is newer: import through the edit path.
				e.conflictRemote.Add(1)
				if e.mConflicts != nil {
					e.mConflicts.With(ps.name, "remote").Inc()
				}
			}
		}
		fresh = append(fresh, ev)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	stored, err := e.local.AddEvents(fresh)
	if err != nil && len(stored) == 0 {
		return 0, fmt.Errorf("mesh: import: %w", err)
	}
	if err != nil {
		e.logger.Warn("mesh: partial import", "peer", ps.name,
			"stored", len(stored), "pulled", len(fresh), "error", err)
	}
	e.imported.Add(int64(len(stored)))
	if e.mImported != nil {
		e.mImported.With(ps.name).Add(int64(len(stored)))
	}
	e.recordProvenance(ps, stored, prov)
	return len(stored), nil
}

// recordProvenance stamps this node's hop onto each imported event's
// provenance, observes hop and end-to-end replication latencies, and
// publishes the result to the engine's table (overwriting the
// self-origin record AddEvents just wrote) and tracer. Events from
// peers that predate provenance get a best-effort record originating at
// the immediate upstream peer, so the chain is never shorter than what
// the wire actually carried.
func (e *Engine) recordProvenance(ps *peerState, stored []*misp.Event, prov map[string]*obs.Provenance) {
	if e.prov == nil && e.tracer == nil && e.mHopLat == nil {
		return
	}
	now := time.Now()
	for _, ev := range stored {
		p := prov[ev.UUID]
		if p == nil {
			p = &obs.Provenance{Origin: ps.name}
		} else {
			p = p.Clone()
		}
		// Hop latency: time since the previous node touched the event —
		// its last pull, or the origin ingest for the first hop.
		prevNano := p.IngestUnixNano
		if n := len(p.Hops); n > 0 {
			prevNano = p.Hops[n-1].PulledUnixNano
		}
		p.Hops = append(p.Hops, obs.Hop{Node: e.node, PulledUnixNano: now.UnixNano()})
		if prevNano > 0 {
			if e.mHopLat != nil {
				e.mHopLat.With(ps.name).Observe(now.Sub(time.Unix(0, prevNano)).Seconds())
			}
		}
		if p.IngestUnixNano > 0 && e.mRepl != nil {
			e.mRepl.Observe(now.Sub(time.Unix(0, p.IngestUnixNano)).Seconds())
		}
		e.prov.Record(ev.UUID, p)
		e.tracer.RecordImport(ev.UUID, p)
	}
}

// PeerStatus is one peer's replication state as seen from this node —
// the machine-readable slice of the fleet view.
type PeerStatus struct {
	Name        string
	Cursor      uint64
	LastSuccess time.Time // zero until one round drains
	LagSeconds  float64
	Backoff     time.Duration
	Failures    int64
	LastError   string
}

// PeerStatuses snapshots every peer's replication state for health
// checks and GET /cluster/status. Safe to call concurrently with the
// sync workers.
func (e *Engine) PeerStatuses() []PeerStatus {
	out := make([]PeerStatus, 0, len(e.peers))
	for _, ps := range e.peers {
		cur := e.Cursor(ps.name)
		ps.statMu.Lock()
		out = append(out, PeerStatus{
			Name:        ps.name,
			Cursor:      cur.Seq,
			LastSuccess: ps.lastSuccess,
			LagSeconds:  ps.lagSeconds,
			Backoff:     ps.backoff,
			Failures:    ps.failures,
			LastError:   ps.lastErr,
		})
		ps.statMu.Unlock()
	}
	return out
}

// applyDeletes lands one page's tombstones locally. Newest-wins holds
// for deletions too: a local revision stamped after the deletion time
// is a concurrent edit that survives (the edit will out-replicate the
// tombstone on the next round in the other direction). Applying with
// the original deletion time — not time.Now() — keeps that comparison
// transitive across multi-hop topologies.
func (e *Engine) applyDeletes(ps *peerState, deletes []storage.Change) error {
	for _, d := range deletes {
		local, err := e.local.GetEvent(d.UUID)
		if err != nil {
			// Never had it (or already deleted): nothing to drop.
			continue
		}
		if local.Timestamp.Unix() > d.DeletedAt.Unix() {
			// Concurrent local edit newer than the deletion: the edit wins.
			e.conflictLocal.Add(1)
			if e.mConflicts != nil {
				e.mConflicts.With(ps.name, "local").Inc()
			}
			continue
		}
		if err := e.localDel.DeleteEventAt(d.UUID, d.DeletedAt); err != nil {
			return fmt.Errorf("mesh: apply delete %s: %w", d.UUID, err)
		}
		e.deleted.Add(1)
		if e.mDeleted != nil {
			e.mDeleted.With(ps.name).Inc()
		}
	}
	return nil
}
