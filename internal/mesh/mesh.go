// Package mesh is the platform's federation engine: it turns a set of
// independent TIP nodes into an N-node anti-entropy mesh, the multi-peer
// replacement for the one-shot serial tip.SyncFrom. This is the paper's
// Output Module grown horizontal — org-to-org intelligence exchange
// between peer MISP-like instances (§IV-A) at replication speeds that
// keep up with ingest.
//
// Each configured peer gets its own sync worker goroutine that pulls the
// peer's paginated ingest-sequence change feed (GET /events/changes) on
// a jittered interval, with exponential backoff while the peer is down.
// Workers run concurrently under a bounded semaphore, so a 16-peer node
// catches up against all peers at once instead of one at a time
// (WithSerialSync is the measured ablation). The hot path is loss-free
// and echo-free:
//
//   - Sound cursors: replication pages over the peer's local ingest
//     sequence, not event modification time. A (timestamp, uuid) cursor
//     is unsound on a mesh — when the peer imports an event late (from a
//     third node) with an equal or older timestamp, it lands *behind* an
//     already-advanced time cursor and is never served again. On the
//     seq feed a late import always lands at the tail, past every
//     cursor already handed out.
//   - Durable cursors: every synced page advances a per-peer sequence
//     high-water mark persisted through a CursorStore, so a restarted
//     node resumes where it stopped instead of re-pulling history. A
//     page whose import fails outright does not advance the cursor —
//     the events are re-pulled next round.
//   - Echo suppression: before importing, each pulled event is checked
//     against the local store by UUID + timestamp. An event the node
//     already owns at the same or newer timestamp is skipped, so A→B→A
//     round-trips re-import nothing and trigger no re-analysis.
//   - Conflict resolution: concurrent edits of the same (cluster) UUID
//     resolve newest-timestamp-wins — a strictly newer remote revision
//     replaces the local one through the store's edit path, a strictly
//     older one is dropped. Ties keep the local copy.
//   - Deletion replication: tombstoned UUIDs on the change feed
//     (expired or retracted indicators) are applied locally at their
//     original deletion time, again newest-wins — a local edit strictly
//     newer than the deletion survives it. Peers that predate the
//     tombstone wire format fall back to the events-only feed.
//   - Batch import: pages land through the service's group-committed
//     AddEvents, so replication rides the same 10.9× durable batch path
//     as local ingest, and the page size adapts upward (doubling to
//     MaxPage) while full pages keep coming.
package mesh

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/storage"
)

// Local is the importing side of the engine: the node's own TIP service.
// *tip.Service satisfies it.
type Local interface {
	// AddEvents imports a batch through the group-commit path and
	// returns the events actually stored.
	AddEvents(events []*misp.Event) ([]*misp.Event, error)
	// GetEvent returns the locally stored revision of uuid, or an error
	// when the node does not hold it.
	GetEvent(uuid string) (*misp.Event, error)
}

// Remote is one peer's paginated pull surface: its ingest-sequence
// change feed. *tip.Client satisfies it.
type Remote interface {
	ChangesPage(ctx context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error)
}

// DeletionRemote is a Remote whose change feed also carries deletion
// tombstones (*tip.Client satisfies it). When a peer's remote
// implements it and the local side can delete, the engine pulls the
// tombstone-bearing feed and replicates deletions; otherwise it falls
// back to the events-only ChangesPage.
type DeletionRemote interface {
	Remote
	Changes(ctx context.Context, afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error)
}

// DeletionLocal is a Local that can apply a replicated deletion at its
// original deletion time (*tip.Service satisfies it).
type DeletionLocal interface {
	DeleteEventAt(uuid string, at time.Time) error
}

// Peer names one replication source.
type Peer struct {
	// Name keys the peer's durable cursor and metric labels. It must be
	// unique and stable across restarts.
	Name   string
	Remote Remote
}

// Defaults for Engine tuning knobs.
const (
	DefaultInterval   = 30 * time.Second
	DefaultBackoffMin = time.Second
	DefaultBackoffMax = 5 * time.Minute
	// DefaultBasePage is the starting pull page size; full pages double
	// it up to DefaultMaxPage. The raised ceiling (vs SyncFrom's fixed
	// 500) amortizes HTTP and JSON overhead during catch-up, and gzip
	// keeps the larger pages cheap on the wire.
	DefaultBasePage = 500
	DefaultMaxPage  = 5000
)

// Totals are the engine's lifetime counters, also exported as
// caisp_mesh_* metric families when a registry is attached.
type Totals struct {
	Pages          int64 // pages pulled across all peers
	Pulled         int64 // events received from peers
	Imported       int64 // events actually imported (stored)
	EchoSuppressed int64 // already-owned events skipped (same timestamp)
	ConflictLocal  int64 // concurrent edits resolved keeping the local copy
	ConflictRemote int64 // concurrent edits resolved importing the remote copy
	Deleted        int64 // replicated deletions applied to the local store
	Errors         int64 // failed sync attempts (transport or import)
	Rounds         int64 // completed sync rounds (one peer drained to head)
}

// Engine drives continuous anti-entropy pull replication against the
// configured peers.
type Engine struct {
	local    Local
	localDel DeletionLocal // nil when local cannot apply deletions
	cursors  CursorStore
	peers    []*peerState

	interval   time.Duration
	backoffMin time.Duration
	backoffMax time.Duration
	basePage   int
	maxPage    int
	workers    int
	logger     *slog.Logger

	sem chan struct{} // bounds concurrent per-peer syncs

	mu  sync.Mutex // guards cur
	cur map[string]Cursor

	pages          atomic.Int64
	pulled         atomic.Int64
	imported       atomic.Int64
	echoSuppressed atomic.Int64
	conflictLocal  atomic.Int64
	conflictRemote atomic.Int64
	deleted        atomic.Int64
	errorsN        atomic.Int64
	rounds         atomic.Int64

	// metric families; nil without WithMetrics.
	mPages     *obs.CounterVec   // {peer}
	mPulled    *obs.CounterVec   // {peer}
	mImported  *obs.CounterVec   // {peer}
	mEcho      *obs.CounterVec   // {peer}
	mConflicts *obs.CounterVec   // {peer, winner}
	mDeleted   *obs.CounterVec   // {peer}
	mErrors    *obs.CounterVec   // {peer}
	mSync      *obs.Histogram    // sync round latency
	mLag       *obs.GaugeVec     // {peer} seconds behind the peer head
	mBackoff   *obs.GaugeVec     // {peer} current backoff, 0 when healthy

	runCtx  context.Context
	cancel  context.CancelFunc
	stopped chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
}

// peerState is one peer's mutable sync state, touched only by the peer's
// worker (or by SyncOnce, which the engine serializes per peer).
type peerState struct {
	name    string
	remote  Remote
	full    DeletionRemote // non-nil when the remote serves tombstones
	page    int            // adaptive page size
	backoff time.Duration  // 0 while healthy
	busy    sync.Mutex     // serializes overlapping syncs of one peer
}

// Option configures an Engine.
type Option func(*Engine)

// WithInterval sets the base poll interval; each worker jitters its
// actual sleep in [interval/2, 3·interval/2) so peers do not phase-lock.
func WithInterval(d time.Duration) Option {
	return func(e *Engine) { e.interval = d }
}

// WithBackoff bounds the exponential backoff applied while a peer fails.
func WithBackoff(min, max time.Duration) Option {
	return func(e *Engine) { e.backoffMin, e.backoffMax = min, max }
}

// WithPageSize sets the starting and maximum pull page size. Full pages
// double the size toward max; any sync error resets it to base.
func WithPageSize(base, max int) Option {
	return func(e *Engine) { e.basePage, e.maxPage = base, max }
}

// WithConcurrency bounds how many peers sync at once (default: all).
func WithConcurrency(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithSerialSync is the ablation baseline: one peer syncs at a time,
// the way serial SyncFrom loops over peers. Measured in EXPERIMENTS.md
// §X12 against the default concurrent pool.
func WithSerialSync() Option { return WithConcurrency(1) }

// WithLogger sets the engine logger.
func WithLogger(l *slog.Logger) Option {
	return func(e *Engine) {
		if l != nil {
			e.logger = l
		}
	}
}

// WithMetrics registers the caisp_mesh_* families on reg (nil disables).
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		if reg == nil {
			return
		}
		reg.GaugeFunc("caisp_mesh_peers",
			"Configured replication peers.",
			func() float64 { return float64(len(e.peers)) })
		e.mPages = reg.CounterVec("caisp_mesh_pages_total",
			"Pages pulled from each peer.", "peer")
		e.mPulled = reg.CounterVec("caisp_mesh_events_pulled_total",
			"Events received from each peer before suppression.", "peer")
		e.mImported = reg.CounterVec("caisp_mesh_events_imported_total",
			"Events imported into the local store from each peer.", "peer")
		e.mEcho = reg.CounterVec("caisp_mesh_echo_suppressed_total",
			"Already-owned events skipped without re-import or re-analysis.", "peer")
		e.mConflicts = reg.CounterVec("caisp_mesh_conflicts_total",
			"Concurrent edits of one UUID resolved newest-timestamp-wins.", "peer", "winner")
		e.mDeleted = reg.CounterVec("caisp_mesh_deletes_applied_total",
			"Replicated deletions applied to the local store per peer.", "peer")
		e.mErrors = reg.CounterVec("caisp_mesh_errors_total",
			"Failed sync attempts per peer (transport or import).", "peer")
		e.mSync = reg.Histogram("caisp_mesh_sync_seconds",
			"Wall time of one sync round: drain a peer's backlog to its head.")
		e.mLag = reg.GaugeVec("caisp_mesh_lag_seconds",
			"Replication lag per peer: age of the newest event pulled in the last drained round, zero when caught up.", "peer")
		e.mBackoff = reg.GaugeVec("caisp_mesh_backoff_seconds",
			"Current failure backoff per peer; zero while healthy.", "peer")
	}
}

// New builds an engine over the local import surface and the given
// peers, loading durable cursors from cursors (NewMemCursors for a
// memory-only node). Call Start to begin replicating.
func New(local Local, peers []Peer, cursors CursorStore, opts ...Option) (*Engine, error) {
	if local == nil {
		return nil, errors.New("mesh: nil local service")
	}
	if cursors == nil {
		cursors = NewMemCursors()
	}
	e := &Engine{
		local:      local,
		cursors:    cursors,
		interval:   DefaultInterval,
		backoffMin: DefaultBackoffMin,
		backoffMax: DefaultBackoffMax,
		basePage:   DefaultBasePage,
		maxPage:    DefaultMaxPage,
		logger:     slog.Default(),
		stopped:    make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, p := range peers {
		if p.Name == "" || p.Remote == nil {
			return nil, fmt.Errorf("mesh: peer needs a name and a remote")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("mesh: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
		ps := &peerState{name: p.Name, remote: p.Remote}
		ps.full, _ = p.Remote.(DeletionRemote)
		e.peers = append(e.peers, ps)
	}
	e.localDel, _ = local.(DeletionLocal)
	for _, o := range opts {
		o(e)
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	if e.basePage <= 0 {
		e.basePage = DefaultBasePage
	}
	if e.maxPage < e.basePage {
		e.maxPage = e.basePage
	}
	if e.workers <= 0 || e.workers > len(e.peers) {
		e.workers = len(e.peers)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	for _, ps := range e.peers {
		ps.page = e.basePage
	}
	cur, err := e.cursors.Load()
	if err != nil {
		return nil, err
	}
	e.cur = cur
	e.sem = make(chan struct{}, e.workers)
	e.runCtx, e.cancel = context.WithCancel(context.Background())
	return e, nil
}

// Peers reports the configured peer count.
func (e *Engine) Peers() int { return len(e.peers) }

// Totals snapshots the lifetime counters.
func (e *Engine) Totals() Totals {
	return Totals{
		Pages:          e.pages.Load(),
		Pulled:         e.pulled.Load(),
		Imported:       e.imported.Load(),
		EchoSuppressed: e.echoSuppressed.Load(),
		ConflictLocal:  e.conflictLocal.Load(),
		ConflictRemote: e.conflictRemote.Load(),
		Deleted:        e.deleted.Load(),
		Errors:         e.errorsN.Load(),
		Rounds:         e.rounds.Load(),
	}
}

// Cursor returns the current high-water mark for a peer.
func (e *Engine) Cursor(peer string) Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cur[peer]
}

func (e *Engine) setCursor(peer string, c Cursor) {
	e.mu.Lock()
	e.cur[peer] = c
	snapshot := make(map[string]Cursor, len(e.cur))
	for k, v := range e.cur {
		snapshot[k] = v
	}
	e.mu.Unlock()
	if err := e.cursors.Save(snapshot); err != nil {
		// A lost save costs a re-pulled suffix (idempotent via echo
		// suppression), never lost events — log and continue.
		e.logger.Warn("mesh: cursor save failed", "peer", peer, "error", err)
	}
}

// Start launches one sync worker per peer. It is a no-op the second time.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	for _, ps := range e.peers {
		e.wg.Add(1)
		go e.runPeer(ps)
	}
}

// Close stops the workers, waits for in-flight syncs to finish, and
// leaves the durable cursors at their latest high-water marks.
func (e *Engine) Close() {
	e.cancel()
	select {
	case <-e.stopped:
	default:
		close(e.stopped)
	}
	e.wg.Wait()
}

// runPeer is one peer's poll loop: jittered interval while healthy,
// exponential backoff while failing, bounded by the engine semaphore so
// at most `workers` peers sync concurrently.
func (e *Engine) runPeer(ps *peerState) {
	defer e.wg.Done()
	// Initial jitter staggers the fleet so N workers do not fire their
	// first pull at the same instant.
	timer := time.NewTimer(time.Duration(rand.Int63n(int64(e.interval)/2 + 1)))
	defer timer.Stop()
	for {
		select {
		case <-e.runCtx.Done():
			return
		case <-timer.C:
		}
		select {
		case e.sem <- struct{}{}:
		case <-e.runCtx.Done():
			return
		}
		_, err := e.syncPeer(e.runCtx, ps)
		<-e.sem
		next := e.jittered(e.interval)
		if err != nil && e.runCtx.Err() == nil {
			if ps.backoff == 0 {
				ps.backoff = e.backoffMin
			} else if ps.backoff < e.backoffMax {
				ps.backoff *= 2
				if ps.backoff > e.backoffMax {
					ps.backoff = e.backoffMax
				}
			}
			next = e.jittered(ps.backoff)
			e.logger.Warn("mesh: sync failed", "peer", ps.name, "backoff", ps.backoff, "error", err)
		} else {
			ps.backoff = 0
		}
		if e.mBackoff != nil {
			e.mBackoff.With(ps.name).Set(ps.backoff.Seconds())
		}
		timer.Reset(next)
	}
}

// jittered spreads d over [d/2, 3d/2) so poll rounds decorrelate.
func (e *Engine) jittered(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// SyncOnce drains every peer's backlog once, respecting the concurrency
// bound, and returns the total number of events imported. It is the
// synchronous form the poll workers drive continuously — also the hook
// meshload and tests use for deterministic rounds.
func (e *Engine) SyncOnce(ctx context.Context) (int, error) {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total int
		errs  []error
	)
	for _, ps := range e.peers {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			return total, ctx.Err()
		}
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			defer func() { <-e.sem }()
			n, err := e.syncPeer(ctx, ps)
			mu.Lock()
			total += n
			if err != nil {
				errs = append(errs, fmt.Errorf("peer %s: %w", ps.name, err))
			}
			mu.Unlock()
		}(ps)
	}
	wg.Wait()
	return total, errors.Join(errs...)
}

// syncPeer drains one peer's backlog from the durable cursor to the
// peer's head: pull a page, suppress echoes, resolve conflicts, batch
// import, advance the cursor, repeat while pages remain.
func (e *Engine) syncPeer(ctx context.Context, ps *peerState) (int, error) {
	ps.busy.Lock()
	defer ps.busy.Unlock()
	start := time.Now()
	cur := e.Cursor(ps.name)
	imported := 0
	var newest time.Time // newest event timestamp pulled this round
	for {
		if err := ctx.Err(); err != nil {
			return imported, err
		}
		var (
			events  []*misp.Event
			deletes []storage.Change
			next    uint64
			more    bool
			err     error
		)
		if ps.full != nil && e.localDel != nil {
			// Tombstone-bearing feed: split the page into live revisions
			// and deletion markers.
			var changes []storage.Change
			changes, next, more, err = ps.full.Changes(ctx, cur.Seq, ps.page)
			for _, ch := range changes {
				if ch.Event != nil {
					events = append(events, ch.Event)
				} else {
					deletes = append(deletes, ch)
				}
			}
		} else {
			events, next, more, err = ps.remote.ChangesPage(ctx, cur.Seq, ps.page)
		}
		if err != nil {
			ps.page = e.basePage
			e.countErr(ps)
			return imported, err
		}
		entries := len(events) + len(deletes)
		e.pages.Add(1)
		e.pulled.Add(int64(entries))
		if e.mPages != nil {
			e.mPages.With(ps.name).Inc()
			e.mPulled.With(ps.name).Add(int64(entries))
		}
		if len(events) > 0 {
			n, err := e.importPage(ps, events)
			imported += n
			if err != nil {
				// Nothing from this page landed: do not advance the
				// cursor, the page is re-pulled after backoff.
				ps.page = e.basePage
				e.countErr(ps)
				return imported, err
			}
			if ts := events[len(events)-1].Timestamp.Time; ts.After(newest) {
				newest = ts
			}
		}
		if len(deletes) > 0 {
			if err := e.applyDeletes(ps, deletes); err != nil {
				ps.page = e.basePage
				e.countErr(ps)
				return imported, err
			}
		}
		if next > cur.Seq {
			// The peer scanned up to next even when every entry there was
			// stale; advancing past those entries is loss-free because a
			// re-put always reappears later in the feed.
			cur = Cursor{Seq: next}
			e.setCursor(ps.name, cur)
		}
		// Adaptive sizing: a full page means backlog — double toward the
		// ceiling so catch-up takes fewer round-trips.
		if entries == ps.page && ps.page < e.maxPage {
			ps.page *= 2
			if ps.page > e.maxPage {
				ps.page = e.maxPage
			}
		}
		if !more {
			break
		}
	}
	e.rounds.Add(1)
	if e.mSync != nil {
		e.mSync.Observe(time.Since(start).Seconds())
	}
	if e.mLag != nil {
		// Drained to the peer's head: lag is how stale the newest event
		// pulled this round was on arrival, zero when already caught up.
		lag := 0.0
		if !newest.IsZero() {
			lag = time.Since(newest).Seconds()
		}
		e.mLag.With(ps.name).Set(lag)
	}
	return imported, nil
}

// importPage filters one pulled page against the local store and batch
// imports what remains. The error is non-nil only when the whole batch
// failed to land (the caller then refuses to advance the cursor);
// per-event validation rejections are logged and skipped, matching
// AddEvents' partial-failure tolerance.
func (e *Engine) importPage(ps *peerState, events []*misp.Event) (int, error) {
	fresh := make([]*misp.Event, 0, len(events))
	for _, ev := range events {
		local, err := e.local.GetEvent(ev.UUID)
		if err == nil {
			// Already own this UUID: newest timestamp wins. Compare at
			// Unix-second (wire) granularity — the local original may keep
			// sub-second precision its round-tripped copy lost, and that
			// precision difference is not an edit.
			switch lts, rts := local.Timestamp.Unix(), ev.Timestamp.Unix(); {
			case lts == rts:
				// The echo case — our own event coming back around the
				// mesh (A→B→A) or a copy both sides already replicated.
				e.echoSuppressed.Add(1)
				if e.mEcho != nil {
					e.mEcho.With(ps.name).Inc()
				}
				continue
			case lts > rts:
				// Local revision is newer: drop the stale remote copy.
				e.conflictLocal.Add(1)
				if e.mConflicts != nil {
					e.mConflicts.With(ps.name, "local").Inc()
				}
				continue
			default:
				// Remote revision is newer: import through the edit path.
				e.conflictRemote.Add(1)
				if e.mConflicts != nil {
					e.mConflicts.With(ps.name, "remote").Inc()
				}
			}
		}
		fresh = append(fresh, ev)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	stored, err := e.local.AddEvents(fresh)
	if err != nil && len(stored) == 0 {
		return 0, fmt.Errorf("mesh: import: %w", err)
	}
	if err != nil {
		e.logger.Warn("mesh: partial import", "peer", ps.name,
			"stored", len(stored), "pulled", len(fresh), "error", err)
	}
	e.imported.Add(int64(len(stored)))
	if e.mImported != nil {
		e.mImported.With(ps.name).Add(int64(len(stored)))
	}
	return len(stored), nil
}

// applyDeletes lands one page's tombstones locally. Newest-wins holds
// for deletions too: a local revision stamped after the deletion time
// is a concurrent edit that survives (the edit will out-replicate the
// tombstone on the next round in the other direction). Applying with
// the original deletion time — not time.Now() — keeps that comparison
// transitive across multi-hop topologies.
func (e *Engine) applyDeletes(ps *peerState, deletes []storage.Change) error {
	for _, d := range deletes {
		local, err := e.local.GetEvent(d.UUID)
		if err != nil {
			// Never had it (or already deleted): nothing to drop.
			continue
		}
		if local.Timestamp.Unix() > d.DeletedAt.Unix() {
			// Concurrent local edit newer than the deletion: the edit wins.
			e.conflictLocal.Add(1)
			if e.mConflicts != nil {
				e.mConflicts.With(ps.name, "local").Inc()
			}
			continue
		}
		if err := e.localDel.DeleteEventAt(d.UUID, d.DeletedAt); err != nil {
			return fmt.Errorf("mesh: apply delete %s: %w", d.UUID, err)
		}
		e.deleted.Add(1)
		if e.mDeleted != nil {
			e.mDeleted.With(ps.name).Inc()
		}
	}
	return nil
}

func (e *Engine) countErr(ps *peerState) {
	e.errorsN.Add(1)
	if e.mErrors != nil {
		e.mErrors.With(ps.name).Inc()
	}
}
