package mesh

import (
	"fmt"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/obs/health"
)

// PeerInfos projects the engine's per-peer replication state onto the
// fleet-view wire type served by GET /cluster/status.
func (e *Engine) PeerInfos() []health.PeerInfo {
	statuses := e.PeerStatuses()
	out := make([]health.PeerInfo, 0, len(statuses))
	for _, ps := range statuses {
		pi := health.PeerInfo{
			Name:           ps.Name,
			Cursor:         ps.Cursor,
			LagSeconds:     ps.LagSeconds,
			BackoffSeconds: ps.Backoff.Seconds(),
			Failures:       ps.Failures,
			LastError:      ps.LastError,
		}
		if !ps.LastSuccess.IsZero() {
			pi.LastSuccessUnix = ps.LastSuccess.Unix()
		}
		out = append(out, pi)
	}
	return out
}

// PeersCheck is the mesh-staleness health check: a peer is stale when
// it has failing syncs and no drained round within staleAfter (or none
// ever). One stale peer degrades the node — it still serves reads and
// accepts ingest, but its view of that peer is aging, which /readyz
// surfaces with the peer named in the reason. Peers failing their very
// first rounds after boot are reported once failures accumulate rather
// than immediately, so a slow-starting neighbor does not flap readiness.
func PeersCheck(e *Engine, staleAfter time.Duration) health.Check {
	if staleAfter <= 0 {
		staleAfter = 2 * DefaultInterval
	}
	return func() health.Result {
		var stale []string
		for _, ps := range e.PeerStatuses() {
			switch {
			case ps.Failures == 0:
				continue
			case ps.LastSuccess.IsZero():
				if ps.Failures >= 3 {
					stale = append(stale, fmt.Sprintf("%s never synced (%d failures: %s)",
						ps.Name, ps.Failures, ps.LastError))
				}
			case time.Since(ps.LastSuccess) > staleAfter:
				stale = append(stale, fmt.Sprintf("%s stale for %s (%d failures: %s)",
					ps.Name, time.Since(ps.LastSuccess).Round(time.Second), ps.Failures, ps.LastError))
			}
		}
		if len(stale) > 0 {
			return health.Degradedf("replication stale: " + strings.Join(stale, "; "))
		}
		return health.Pass()
	}
}
