package mesh

import (
	"context"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

// fullRemote is svcRemote plus the tombstone-bearing feed: the
// in-process stand-in for a peer new enough to serve deletions.
type fullRemote struct{ svcRemote }

func (r fullRemote) Changes(_ context.Context, afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error) {
	return r.svcRemote.svc.Changes(afterSeq, limit)
}

func newFullEngine(t *testing.T, local *tip.Service, peers map[string]*tip.Service) *Engine {
	t.Helper()
	var ps []Peer
	for name, svc := range peers {
		ps = append(ps, Peer{Name: name, Remote: fullRemote{svcRemote{svc}}})
	}
	e, err := New(local, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func syncAll(t *testing.T, engines ...*Engine) {
	t.Helper()
	for round := 0; round < 10; round++ {
		for _, e := range engines {
			if _, err := e.SyncOnce(t.Context()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDeletionReplicatesAcrossRing(t *testing.T) {
	a, b, c := newNode(t), newNode(t), newNode(t)
	events := sampleEvents(t, 30)
	if _, err := a.AddEvents(events); err != nil {
		t.Fatal(err)
	}
	ea := newFullEngine(t, a, map[string]*tip.Service{"c": c})
	eb := newFullEngine(t, b, map[string]*tip.Service{"a": a})
	ec := newFullEngine(t, c, map[string]*tip.Service{"b": b})
	syncAll(t, ea, eb, ec)
	if a.Len() != 30 || b.Len() != 30 || c.Len() != 30 {
		t.Fatalf("no convergence before delete: a=%d b=%d c=%d", a.Len(), b.Len(), c.Len())
	}

	// Expire one indicator on a; the tombstone must walk the ring.
	doomed := events[7].UUID
	if err := a.DeleteEventAt(doomed, now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	syncAll(t, ea, eb, ec)
	for name, svc := range map[string]*tip.Service{"a": a, "b": b, "c": c} {
		if _, err := svc.GetEvent(doomed); err == nil {
			t.Fatalf("node %s still holds the deleted event", name)
		}
		if svc.Len() != 29 {
			t.Fatalf("node %s Len = %d, want 29", name, svc.Len())
		}
	}
	if eb.Totals().Deleted == 0 {
		t.Fatal("pull from a counted no applied deletions")
	}

	// Steady state: the tombstone keeps riding the feed but never
	// re-applies (GetEvent misses are silent skips, not errors).
	before := eb.Totals().Deleted
	syncAll(t, ea, eb, ec)
	if eb.Totals().Deleted != before {
		t.Fatal("tombstone re-applied in steady state")
	}
}

func TestConcurrentEditOutlivesDeletion(t *testing.T) {
	a, b := newNode(t), newNode(t)
	orig := sampleEvents(t, 1)[0]
	if _, err := a.AddEvents([]*misp.Event{orig.Clone()}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEvents([]*misp.Event{orig.Clone()}); err != nil {
		t.Fatal(err)
	}

	// a deletes at t+1s while b concurrently edits at t+2s: the newer
	// edit must win on both nodes once the partition heals.
	if err := a.DeleteEventAt(orig.UUID, now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	edited := orig.Clone()
	edited.Info = "revised verdict"
	edited.Timestamp = misp.UT(now.Add(2 * time.Second))
	if _, err := b.AddEvents([]*misp.Event{edited}); err != nil {
		t.Fatal(err)
	}

	// b pulls first so the tombstone actually reaches the node holding
	// the newer edit (the other order resurrects on a before b ever sees
	// the deletion — also correct, but it would not exercise the
	// conflict path).
	ea := newFullEngine(t, a, map[string]*tip.Service{"b": b})
	eb := newFullEngine(t, b, map[string]*tip.Service{"a": a})
	syncAll(t, eb, ea)

	for name, svc := range map[string]*tip.Service{"a": a, "b": b} {
		got, err := svc.GetEvent(orig.UUID)
		if err != nil {
			t.Fatalf("node %s lost the concurrent edit to the tombstone", name)
		}
		if got.Info != "revised verdict" {
			t.Fatalf("node %s holds %q, want the edit", name, got.Info)
		}
	}
	if eb.Totals().ConflictLocal == 0 {
		t.Fatal("edit-vs-tombstone conflict not counted")
	}
}

func TestDeletionNewerThanEventWinsBothWays(t *testing.T) {
	a, b := newNode(t), newNode(t)
	orig := sampleEvents(t, 1)[0]
	if _, err := a.AddEvents([]*misp.Event{orig.Clone()}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEvents([]*misp.Event{orig.Clone()}); err != nil {
		t.Fatal(err)
	}
	if err := a.DeleteEventAt(orig.UUID, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	ea := newFullEngine(t, a, map[string]*tip.Service{"b": b})
	eb := newFullEngine(t, b, map[string]*tip.Service{"a": a})
	syncAll(t, ea, eb)

	if _, err := b.GetEvent(orig.UUID); err == nil {
		t.Fatal("b did not apply the newer deletion")
	}
	// a pulls b's live-but-older copy: it must not resurrect. a's feed
	// application path sees the event, but a's copy is tombstoned newer.
	if _, err := a.GetEvent(orig.UUID); err == nil {
		t.Fatal("deletion clawed back on a")
	}
}
