package mesh

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/misp"
	"github.com/caisplatform/caisp/internal/obs"
	"github.com/caisplatform/caisp/internal/obs/health"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
)

// obsNode is one in-process TIP instance with the full observability
// sidecar: named service, provenance table, tracer and registry — the
// wiring tipd does at boot.
type obsNode struct {
	name   string
	svc    *tip.Service
	prov   *obs.ProvTable
	tracer *obs.Tracer
	reg    *obs.Registry
}

func newObsNode(t *testing.T, name string) *obsNode {
	t.Helper()
	store, err := storage.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	reg := obs.NewRegistry()
	prov := obs.NewProvTable(0)
	return &obsNode{
		name:   name,
		svc:    tip.NewService(store, tip.WithName(name), tip.WithProvenance(prov)),
		prov:   prov,
		tracer: obs.NewTracer(reg),
		reg:    reg,
	}
}

// pullFrom builds n's engine pulling from upstream over the
// tombstone-bearing feed (the path that carries provenance).
func pullFrom(t *testing.T, n, upstream *obsNode) *Engine {
	t.Helper()
	e, err := New(n.svc,
		[]Peer{{Name: upstream.name, Remote: fullRemote{svcRemote{upstream.svc}}}},
		nil,
		WithMetrics(n.reg),
		WithProvenance(n.name, n.prov),
		WithTracer(n.tracer))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestProvenancePropagatesAcrossHops(t *testing.T) {
	// A three-node chain a <- b <- c: b pulls a, c pulls b. The terminal
	// node must see origin=a with both intermediate hops in pull order —
	// the cross-node trace the issue's acceptance demo checks over HTTP.
	a, b, c := newObsNode(t, "a"), newObsNode(t, "b"), newObsNode(t, "c")
	events := sampleEvents(t, 3)
	if _, err := a.svc.AddEvents(events); err != nil {
		t.Fatal(err)
	}

	eb := pullFrom(t, b, a)
	ec := pullFrom(t, c, b)
	syncAll(t, eb, ec)
	if b.svc.Len() != 3 || c.svc.Len() != 3 {
		t.Fatalf("no convergence: b=%d c=%d", b.svc.Len(), c.svc.Len())
	}

	uuid := events[0].UUID
	// Origin's own table: self-origin, no hops, seq filled at serve time.
	if p := a.prov.Lookup(uuid); p == nil || p.Origin != "a" || len(p.Hops) != 0 {
		t.Fatalf("origin provenance = %+v", p)
	}
	// One hop in on b.
	pb := b.prov.Lookup(uuid)
	if pb == nil || pb.Origin != "a" || len(pb.Hops) != 1 || pb.Hops[0].Node != "b" {
		t.Fatalf("b provenance = %+v", pb)
	}
	if pb.OriginSeq == 0 {
		t.Fatal("origin seq not filled at serve time")
	}
	if pb.IngestUnixNano == 0 {
		t.Fatal("origin ingest time lost in transit")
	}
	// Terminal node: full two-hop path, monotonic pull times.
	pc := c.prov.Lookup(uuid)
	if pc == nil || pc.Origin != "a" || len(pc.Hops) != 2 ||
		pc.Hops[0].Node != "b" || pc.Hops[1].Node != "c" {
		t.Fatalf("terminal provenance = %+v", pc)
	}
	if pc.Hops[1].PulledUnixNano < pc.Hops[0].PulledUnixNano {
		t.Fatalf("hop times not monotonic: %+v", pc.Hops)
	}
	if pc.OriginSeq != pb.OriginSeq {
		t.Fatalf("origin seq changed in transit: b=%d c=%d", pb.OriginSeq, pc.OriginSeq)
	}

	// The tracer on the terminal node retained the import traces...
	found := false
	for _, rec := range c.tracer.Imports() {
		if rec.ID == uuid {
			found = true
			if rec.Origin != "a" || len(rec.Hops) != 2 || rec.Hops[1].MS < 0 {
				t.Fatalf("import trace = %+v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("no import trace for %s on terminal node", uuid)
	}

	// ...and the latency histograms saw every import.
	var sb strings.Builder
	if err := c.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`caisp_mesh_hop_latency_seconds_count{peer="b"} 3`,
		"caisp_mesh_replication_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

// toggleRemote serves the upstream service until failing is set, then
// errors every pull — a peer that died mid-conversation.
type toggleRemote struct {
	svc     *tip.Service
	failing *atomic.Bool
}

var errPeerDown = errors.New("connection refused")

func (r toggleRemote) ChangesPage(_ context.Context, afterSeq uint64, limit int) ([]*misp.Event, uint64, bool, error) {
	if r.failing.Load() {
		return nil, 0, false, errPeerDown
	}
	return r.svc.ChangesPage(afterSeq, limit)
}

func (r toggleRemote) Changes(_ context.Context, afterSeq uint64, limit int) ([]storage.Change, uint64, bool, error) {
	if r.failing.Load() {
		return nil, 0, false, errPeerDown
	}
	return r.svc.Changes(afterSeq, limit)
}

func TestPeerFailureLagAndHealth(t *testing.T) {
	local, upstream := newObsNode(t, "local"), newObsNode(t, "up")
	if _, err := upstream.svc.AddEvents(sampleEvents(t, 2)); err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	e, err := New(local.svc,
		[]Peer{{Name: "up", Remote: toggleRemote{svc: upstream.svc, failing: &failing}}},
		nil, WithMetrics(local.reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)

	// Healthy round: last success stamped, no failures, check passes.
	if _, err := e.SyncOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	st := e.PeerStatuses()
	if len(st) != 1 || st[0].Failures != 0 || st[0].LastSuccess.IsZero() || st[0].LastError != "" {
		t.Fatalf("healthy status = %+v", st)
	}
	check := PeersCheck(e, time.Millisecond)
	if res := check(); res.Status != health.OK {
		t.Fatalf("healthy check = %+v", res)
	}

	// The peer dies: failures accumulate, the lag gauge grows as
	// seconds-since-last-success instead of freezing, and the health
	// check degrades once the last success ages past staleAfter.
	failing.Store(true)
	time.Sleep(5 * time.Millisecond)
	if _, err := e.SyncOnce(t.Context()); err == nil {
		t.Fatal("sync against dead peer succeeded")
	}
	st = e.PeerStatuses()
	if st[0].Failures != 1 || !strings.Contains(st[0].LastError, "connection refused") {
		t.Fatalf("failing status = %+v", st)
	}
	firstLag := st[0].LagSeconds
	if firstLag <= 0 {
		t.Fatalf("lag frozen at %g after failure", firstLag)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := e.SyncOnce(t.Context()); err == nil {
		t.Fatal("second sync against dead peer succeeded")
	}
	st = e.PeerStatuses()
	if st[0].Failures != 2 || st[0].LagSeconds <= firstLag {
		t.Fatalf("lag not growing: %+v (was %g)", st[0], firstLag)
	}
	res := check()
	if res.Status != health.Degraded {
		t.Fatalf("stale check = %+v, want Degraded", res)
	}
	if !strings.Contains(res.Detail, "up") {
		t.Fatalf("degraded reason does not name the peer: %q", res.Detail)
	}

	// The last-success watermark is on the metrics surface for alerting.
	var sb strings.Builder
	if err := local.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `caisp_mesh_last_success_unix_seconds{peer="up"}`) {
		t.Fatalf("last-success gauge missing:\n%s", sb.String())
	}

	// Recovery: one drained round clears failures and the stale verdict.
	failing.Store(false)
	if _, err := e.SyncOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	st = e.PeerStatuses()
	if st[0].Failures != 0 || st[0].LastError != "" {
		t.Fatalf("recovered status = %+v", st)
	}
	if res := check(); res.Status != health.OK {
		t.Fatalf("recovered check = %+v", res)
	}
}

func TestPeersCheckNeverSyncedPeer(t *testing.T) {
	local := newObsNode(t, "local")
	var failing atomic.Bool
	failing.Store(true)
	e, err := New(local.svc,
		[]Peer{{Name: "ghost", Remote: toggleRemote{svc: local.svc, failing: &failing}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	check := PeersCheck(e, time.Minute)

	// Early boot failures do not flap readiness...
	for i := 0; i < 2; i++ {
		_, _ = e.SyncOnce(t.Context())
	}
	if res := check(); res.Status != health.OK {
		t.Fatalf("early boot check = %+v", res)
	}
	// ...but a peer that keeps failing with no drained round ever is
	// reported once failures accumulate.
	_, _ = e.SyncOnce(t.Context())
	res := check()
	if res.Status != health.Degraded || !strings.Contains(res.Detail, "ghost") {
		t.Fatalf("never-synced check = %+v", res)
	}
}

func TestPeerInfosProjection(t *testing.T) {
	local, upstream := newObsNode(t, "local"), newObsNode(t, "up")
	if _, err := upstream.svc.AddEvents(sampleEvents(t, 1)); err != nil {
		t.Fatal(err)
	}
	e, err := New(local.svc,
		[]Peer{{Name: "up", Remote: fullRemote{svcRemote{upstream.svc}}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	infos := e.PeerInfos()
	if len(infos) != 1 || infos[0].LastSuccessUnix != 0 {
		t.Fatalf("pre-sync infos = %+v", infos)
	}
	if _, err := e.SyncOnce(t.Context()); err != nil {
		t.Fatal(err)
	}
	infos = e.PeerInfos()
	if infos[0].Name != "up" || infos[0].LastSuccessUnix == 0 || infos[0].Cursor == 0 {
		t.Fatalf("post-sync infos = %+v", infos)
	}
}
