package mesh

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Cursor is a per-peer replication high-water mark over the remote's
// ingest-sequence change feed (GET /events/changes): the next pull
// resumes strictly after Seq. The sequence is assigned by the peer's
// own WAL and persisted with every event, so a saved cursor stays valid
// across restarts of either side. A zero cursor (including one loaded
// from a pre-seq sidecar) re-pulls from the beginning, which echo
// suppression makes idempotent.
type Cursor struct {
	Seq uint64 `json:"seq"`
}

// CursorStore persists the per-peer cursors so a restarted node resumes
// replication from its high-water marks instead of re-pulling history.
type CursorStore interface {
	// Load returns the persisted cursors keyed by peer name. A store
	// that has never been written returns an empty map, not an error.
	Load() (map[string]Cursor, error)
	// Save atomically replaces the persisted cursor set.
	Save(map[string]Cursor) error
}

// FileCursors is a CursorStore backed by one small JSON sidecar file,
// written atomically (temp file + rename) so a crash mid-save leaves the
// previous cursor set intact. Losing a save is harmless: the cursor is a
// resume optimization, and re-pulling a suffix is made idempotent by the
// engine's echo suppression.
type FileCursors struct {
	mu   sync.Mutex
	path string
}

// NewFileCursors persists cursors at path (created on first Save).
func NewFileCursors(path string) *FileCursors {
	return &FileCursors{path: path}
}

// Load implements CursorStore.
func (f *FileCursors) Load() (map[string]Cursor, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return map[string]Cursor{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("mesh: load cursors: %w", err)
	}
	out := map[string]Cursor{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("mesh: decode cursors %s: %w", f.path, err)
	}
	return out, nil
}

// Save implements CursorStore.
func (f *FileCursors) Save(cur map[string]Cursor) error {
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return fmt.Errorf("mesh: encode cursors: %w", err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp, err := os.CreateTemp(filepath.Dir(f.path), ".cursors-*")
	if err != nil {
		return fmt.Errorf("mesh: save cursors: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mesh: save cursors: write %v, sync %v, close %v", werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("mesh: save cursors: %w", err)
	}
	return nil
}

// MemCursors is an in-process CursorStore for memory-only nodes and
// tests: cursors survive engine restarts within the process but not
// process restarts.
type MemCursors struct {
	mu  sync.Mutex
	cur map[string]Cursor
}

// NewMemCursors returns an empty in-memory cursor store.
func NewMemCursors() *MemCursors { return &MemCursors{cur: map[string]Cursor{}} }

// Load implements CursorStore.
func (m *MemCursors) Load() (map[string]Cursor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]Cursor, len(m.cur))
	for k, v := range m.cur {
		out[k] = v
	}
	return out, nil
}

// Save implements CursorStore.
func (m *MemCursors) Save(cur map[string]Cursor) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = make(map[string]Cursor, len(cur))
	for k, v := range cur {
		m.cur[k] = v
	}
	return nil
}
