// Package uuid implements RFC 4122 UUIDs (versions 4 and 5) on top of the
// standard library. STIX 2.x object identifiers require UUIDv4 suffixes and
// deterministic identifiers (used for deduplication and idempotent imports)
// are derived with UUIDv5.
package uuid

import (
	"crypto/rand"
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// UUID is a 128-bit RFC 4122 universally unique identifier.
type UUID [16]byte

// Namespace UUIDs from RFC 4122 Appendix C plus a project-private namespace
// used to derive stable identifiers for normalized OSINT records.
var (
	// NamespaceDNS is the RFC 4122 name space for fully-qualified domain names.
	NamespaceDNS = Must(Parse("6ba7b810-9dad-11d1-80b4-00c04fd430c8"))
	// NamespaceURL is the RFC 4122 name space for URLs.
	NamespaceURL = Must(Parse("6ba7b811-9dad-11d1-80b4-00c04fd430c8"))
	// NamespaceCAISP is the private name space for deterministic CAISP object
	// identifiers (derived from the project name under NamespaceDNS).
	NamespaceCAISP = NewV5(NamespaceDNS, []byte("caisp.invalid"))
)

// Nil is the zero UUID, "00000000-0000-0000-0000-000000000000".
var Nil UUID

var errFormat = errors.New("uuid: invalid format")

// NewV4 returns a random (version 4) UUID. It never fails: the standard
// library guarantees crypto/rand reads succeed or crash the process.
func NewV4() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		// crypto/rand.Read is documented to always succeed on supported
		// platforms; a failure here means the platform entropy source is
		// broken and nothing sensible can continue.
		panic(fmt.Sprintf("uuid: crypto/rand failed: %v", err))
	}
	u.setVersion(4)
	return u
}

// NewV5 returns a name-based (version 5, SHA-1) UUID for the given namespace
// and name. The same inputs always produce the same UUID.
func NewV5(ns UUID, name []byte) UUID {
	h := sha1.New()
	h.Write(ns[:])
	h.Write(name)
	var u UUID
	copy(u[:], h.Sum(nil))
	u.setVersion(5)
	return u
}

// Parse decodes a UUID from its canonical 36-character textual form,
// accepting upper- or lower-case hexadecimal digits.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return Nil, errFormat
	}
	hexOnly := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexOnly)
	if err != nil {
		return Nil, errFormat
	}
	copy(u[:], raw)
	return u, nil
}

// Must returns u or panics if err is non-nil. It is intended for
// package-level initialization of constant UUIDs.
func Must(u UUID, err error) UUID {
	if err != nil {
		panic(err)
	}
	return u
}

// IsValid reports whether s is a syntactically valid canonical UUID.
func IsValid(s string) bool {
	_, err := Parse(s)
	return err == nil
}

// String renders the UUID in canonical lower-case form.
func (u UUID) String() string {
	var b strings.Builder
	b.Grow(36)
	dst := make([]byte, 32)
	hex.Encode(dst, u[:])
	b.Write(dst[0:8])
	b.WriteByte('-')
	b.Write(dst[8:12])
	b.WriteByte('-')
	b.Write(dst[12:16])
	b.WriteByte('-')
	b.Write(dst[16:20])
	b.WriteByte('-')
	b.Write(dst[20:32])
	return b.String()
}

// Version returns the UUID version number encoded in the identifier.
func (u UUID) Version() int {
	return int(u[6] >> 4)
}

// IsNil reports whether the UUID is the all-zero nil UUID.
func (u UUID) IsNil() bool {
	return u == Nil
}

// setVersion stamps the version nibble and the RFC 4122 variant bits.
func (u *UUID) setVersion(v byte) {
	u[6] = (u[6] & 0x0f) | (v << 4)
	u[8] = (u[8] & 0x3f) | 0x80
}
