package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewV4Properties(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 1000; i++ {
		u := NewV4()
		if u.Version() != 4 {
			t.Fatalf("version = %d, want 4", u.Version())
		}
		if u[8]&0xc0 != 0x80 {
			t.Fatalf("variant bits = %#x, want RFC 4122", u[8]&0xc0)
		}
		if seen[u] {
			t.Fatalf("duplicate v4 UUID %s after %d draws", u, i)
		}
		seen[u] = true
	}
}

func TestNewV5Deterministic(t *testing.T) {
	a := NewV5(NamespaceDNS, []byte("example.com"))
	b := NewV5(NamespaceDNS, []byte("example.com"))
	if a != b {
		t.Fatalf("v5 not deterministic: %s vs %s", a, b)
	}
	if a.Version() != 5 {
		t.Fatalf("version = %d, want 5", a.Version())
	}
	c := NewV5(NamespaceDNS, []byte("example.org"))
	if a == c {
		t.Fatal("distinct names produced identical v5 UUIDs")
	}
	d := NewV5(NamespaceURL, []byte("example.com"))
	if a == d {
		t.Fatal("distinct namespaces produced identical v5 UUIDs")
	}
}

func TestNewV5KnownVector(t *testing.T) {
	// RFC 4122 well-known vector: v5(NamespaceDNS, "www.example.com").
	got := NewV5(NamespaceDNS, []byte("www.example.com")).String()
	const want = "2ed6657d-e927-568b-95e1-2665a8aea6a2"
	if got != want {
		t.Fatalf("v5(dns, www.example.com) = %s, want %s", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		give    string
		wantErr bool
	}{
		{give: "6ba7b810-9dad-11d1-80b4-00c04fd430c8"},
		{give: "6BA7B810-9DAD-11D1-80B4-00C04FD430C8"},
		{give: "00000000-0000-0000-0000-000000000000"},
		{give: "6ba7b810-9dad-11d1-80b4-00c04fd430c", wantErr: true},   // short
		{give: "6ba7b810-9dad-11d1-80b4-00c04fd430c8a", wantErr: true}, // long
		{give: "6ba7b8109dad-11d1-80b4-00c04fd430c8x", wantErr: true},  // dash misplaced
		{give: "6ba7b810-9dad-11d1-80b4-00c04fd430cg", wantErr: true},  // non-hex
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		u, err := Parse(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.give)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.give, err)
			continue
		}
		if got := u.String(); got != strings.ToLower(tt.give) {
			t.Errorf("round trip of %q = %q", tt.give, got)
		}
	}
}

func TestStringParseQuick(t *testing.T) {
	f := func(raw [16]byte) bool {
		u := UUID(raw)
		back, err := Parse(u.String())
		return err == nil && back == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsValidAndNil(t *testing.T) {
	if !IsValid(NewV4().String()) {
		t.Fatal("fresh v4 reported invalid")
	}
	if IsValid("not-a-uuid") {
		t.Fatal("garbage reported valid")
	}
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false")
	}
	if NewV4().IsNil() {
		t.Fatal("random UUID reported nil")
	}
}
