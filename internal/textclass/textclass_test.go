package textclass

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassifySeedCategories(t *testing.T) {
	c := New()
	tests := []struct {
		text string
		want string
	}{
		{text: "massive ddos flood hits provider", want: "ddos"},
		{text: "customer database leak after security breach", want: "data-breach"},
		{text: "phishing lure spoofed login page steals credential", want: "phishing"},
		{text: "ransomware trojan encrypts files and installs backdoor", want: "malware"},
		{text: "attackers exploit rce vulnerability cve in struts", want: "vulnerability-exploitation"},
		{text: "ssh brute force password guessing from botnet", want: "brute-force"},
		{text: "sunny weather and a championship win downtown", want: Irrelevant},
	}
	for _, tt := range tests {
		t.Run(tt.text, func(t *testing.T) {
			pred := c.Classify(tt.text)
			if pred.Category != tt.want {
				t.Fatalf("Classify(%q) = %s, want %s", tt.text, pred, tt.want)
			}
			if pred.Relevant != (tt.want != Irrelevant) {
				t.Fatalf("relevance tag wrong: %+v", pred)
			}
			if pred.Confidence <= 0 || pred.Confidence > 1 {
				t.Fatalf("confidence out of range: %v", pred.Confidence)
			}
		})
	}
}

func TestClassifyMultiLanguageKeywords(t *testing.T) {
	c := New()
	tests := []struct {
		text string
		want string
	}{
		{text: "ataque de denegación de servicio", want: "ddos"},                       // Spanish
		{text: "fuite de données clients", want: "data-breach"},                        // French
		{text: "datenleck bei großem anbieter", want: "data-breach"},                   // German
		{text: "vazamento de dados pessoais", want: "data-breach"},                     // Portuguese
		{text: "vulnérabilité critique exploitée", want: "vulnerability-exploitation"}, // French
	}
	for _, tt := range tests {
		if got := c.Classify(tt.text); got.Category != tt.want {
			t.Errorf("Classify(%q) = %s, want %s", tt.text, got, tt.want)
		}
	}
}

func TestClassifyEmptyText(t *testing.T) {
	c := New()
	for _, text := range []string{"", "   ", "a b c"} { // single-char tokens dropped
		pred := c.Classify(text)
		if text != "a b c" && (pred.Category != Irrelevant || pred.Confidence != 0) {
			t.Errorf("Classify(%q) = %+v", text, pred)
		}
	}
}

func TestKeywordsReported(t *testing.T) {
	c := New()
	pred := c.Classify("new ransomware campaign drops trojan")
	if pred.Category != "malware" {
		t.Fatalf("category = %s", pred.Category)
	}
	joined := strings.Join(pred.Keywords, ",")
	if !strings.Contains(joined, "ransomware") || !strings.Contains(joined, "trojan") {
		t.Fatalf("keywords = %v", pred.Keywords)
	}
}

func TestTrainingShiftsPrediction(t *testing.T) {
	c := New()
	const text = "suspicious zorgblat activity detected"
	before := c.Classify(text)
	for i := 0; i < 8; i++ {
		c.Train("malware", "zorgblat activity detected on endpoint")
	}
	after := c.Classify(text)
	if after.Category != "malware" {
		t.Fatalf("after training = %s (before %s)", after, before)
	}
}

func TestEvaluateOnHeldOut(t *testing.T) {
	c := New()
	heldOut := map[string][]string{
		"ddos":        {"dns amplification flood observed", "botnet launches dos attack"},
		"data-breach": {"leaked dump of stolen records", "breach exposed customer data"},
		"malware":     {"worm spreads ransomware payload", "spyware keylogger found"},
		Irrelevant:    {"earnings and weather news roundup", "music festival schedule published"},
	}
	accuracy, confusion := c.Evaluate(heldOut)
	if accuracy < 0.8 {
		t.Fatalf("held-out accuracy %.2f too low; confusion: %v", accuracy, confusion)
	}
	if _, ok := confusion["ddos"]; !ok {
		t.Fatal("confusion matrix missing class")
	}
	if acc, _ := c.Evaluate(nil); acc != 0 {
		t.Fatal("empty evaluation non-zero")
	}
}

func TestClassesSorted(t *testing.T) {
	c := New()
	classes := c.Classes()
	if len(classes) < 7 {
		t.Fatalf("classes = %v", classes)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i-1] >= classes[i] {
			t.Fatal("classes not sorted")
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("DDoS-Attack: 100% outage, naïve café!")
	want := []string{"ddos", "attack", "100", "outage", "naïve", "café"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestConfidenceBoundsQuick(t *testing.T) {
	c := New()
	f := func(text string) bool {
		pred := c.Classify(text)
		return pred.Confidence >= 0 && pred.Confidence <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionString(t *testing.T) {
	p := Prediction{Category: "ddos", Relevant: true, Confidence: 0.9}
	if got := p.String(); !strings.Contains(got, "ddos") || !strings.Contains(got, "relevant") {
		t.Fatalf("String() = %q", got)
	}
}
