// Package textclass implements the natural-language enhancement of §II-A:
// "the use of natural language processing techniques to identify threats
// from the use of keywords that typically indicate a threat in major
// languages; such as ddos, security breach, leak and more. This
// information can be used to tag OSINT data as relevant or irrelevant …
// The prediction confidence of the classifier can be included in the data
// sent to SIEMs."
//
// The classifier is a multinomial naive Bayes over word tokens, seeded
// with a built-in multi-language threat-keyword corpus (English, Spanish,
// French, German, Portuguese) and trainable with additional examples. It
// returns a threat category, a relevant/irrelevant tag and a calibrated
// confidence.
package textclass

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Irrelevant is the class for text carrying no threat signal.
const Irrelevant = "irrelevant"

// Prediction is the classifier's output for one text.
type Prediction struct {
	// Category is the most likely threat category, or Irrelevant.
	Category string `json:"category"`
	// Relevant tags the text as threat-related.
	Relevant bool `json:"relevant"`
	// Confidence is the posterior probability of Category (0–1).
	Confidence float64 `json:"confidence"`
	// Keywords lists the matched seed keywords, most significant first.
	Keywords []string `json:"keywords,omitempty"`
}

// Classifier is a trainable multinomial naive Bayes text classifier.
// Safe for concurrent use.
type Classifier struct {
	mu         sync.RWMutex
	tokenCount map[string]map[string]int // class → token → count
	classDocs  map[string]int            // class → training documents
	classTotal map[string]int            // class → total tokens
	vocab      map[string]bool
	totalDocs  int
	seeds      map[string]string // seed keyword → class
}

// New builds a classifier pre-trained on the built-in keyword corpus.
func New() *Classifier {
	c := &Classifier{
		tokenCount: make(map[string]map[string]int),
		classDocs:  make(map[string]int),
		classTotal: make(map[string]int),
		vocab:      make(map[string]bool),
		seeds:      make(map[string]string),
	}
	for class, docs := range seedCorpus {
		for _, doc := range docs {
			c.Train(class, doc)
		}
	}
	for class, words := range seedKeywords {
		for _, w := range words {
			c.seeds[w] = class
			// Keywords are strong evidence: train them several times.
			for i := 0; i < 3; i++ {
				c.Train(class, w)
			}
		}
	}
	return c
}

// Train adds one labelled example.
func (c *Classifier) Train(class, text string) {
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokenCount[class] == nil {
		c.tokenCount[class] = make(map[string]int)
	}
	c.classDocs[class]++
	c.totalDocs++
	for _, tok := range tokens {
		c.tokenCount[class][tok]++
		c.classTotal[class]++
		c.vocab[tok] = true
	}
}

// Classes lists the known classes, sorted.
func (c *Classifier) Classes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.classDocs))
	for class := range c.classDocs {
		out = append(out, class)
	}
	sort.Strings(out)
	return out
}

// Classify predicts the threat category of a text. Empty or untokenizable
// text is irrelevant with zero confidence.
func (c *Classifier) Classify(text string) Prediction {
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return Prediction{Category: Irrelevant, Confidence: 0}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.totalDocs == 0 {
		return Prediction{Category: Irrelevant, Confidence: 0}
	}

	vocabSize := float64(len(c.vocab))
	type scored struct {
		class string
		logp  float64
	}
	scores := make([]scored, 0, len(c.classDocs))
	for class := range c.classDocs {
		logp := math.Log(float64(c.classDocs[class]) / float64(c.totalDocs))
		denom := float64(c.classTotal[class]) + vocabSize
		for _, tok := range tokens {
			count := float64(c.tokenCount[class][tok])
			logp += math.Log((count + 1) / denom)
		}
		scores = append(scores, scored{class: class, logp: logp})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].logp != scores[j].logp {
			return scores[i].logp > scores[j].logp
		}
		return scores[i].class < scores[j].class
	})

	// Softmax over log-probabilities for a calibrated confidence.
	best := scores[0]
	var denom float64
	for _, s := range scores {
		denom += math.Exp(s.logp - best.logp)
	}
	confidence := 1 / denom

	pred := Prediction{
		Category:   best.class,
		Relevant:   best.class != Irrelevant,
		Confidence: confidence,
	}
	for _, tok := range tokens {
		if class, ok := c.seeds[tok]; ok && class == best.class {
			pred.Keywords = append(pred.Keywords, tok)
		}
	}
	sort.Strings(pred.Keywords)
	return pred
}

// Evaluate scores the classifier on labelled examples, returning accuracy
// and the per-class confusion counts.
func (c *Classifier) Evaluate(examples map[string][]string) (accuracy float64, confusion map[string]map[string]int) {
	confusion = make(map[string]map[string]int)
	total, correct := 0, 0
	for want, docs := range examples {
		for _, doc := range docs {
			got := c.Classify(doc).Category
			if confusion[want] == nil {
				confusion[want] = make(map[string]int)
			}
			confusion[want][got]++
			total++
			if got == want {
				correct++
			}
		}
	}
	if total == 0 {
		return 0, confusion
	}
	return float64(correct) / float64(total), confusion
}

// Tokenize lower-cases and splits on non-alphanumeric runes, dropping
// single-character tokens.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) > 1 {
			out = append(out, f)
		}
	}
	return out
}

// String summarizes a prediction.
func (p Prediction) String() string {
	tag := "irrelevant"
	if p.Relevant {
		tag = "relevant"
	}
	return fmt.Sprintf("%s (%s, confidence %.2f)", p.Category, tag, p.Confidence)
}

// seedKeywords is the multi-language threat-keyword inventory: the words
// that "typically indicate a threat in major languages" (§II-A).
var seedKeywords = map[string][]string{
	"ddos": {
		"ddos", "dos", "denial", "amplification", "botnet", "flood",
		"denegación", "déni", "verweigerung", "negação",
	},
	"data-breach": {
		"breach", "leak", "leaked", "exfiltration", "stolen", "dump",
		"exposed", "violación", "fuite", "datenleck", "vazamento", "brecha",
	},
	"phishing": {
		"phishing", "spearphishing", "credential", "spoofed", "lure",
		"suplantación", "hameçonnage", "fishing",
	},
	"malware": {
		"malware", "trojan", "ransomware", "worm", "spyware", "dropper",
		"infostealer", "backdoor", "keylogger", "rootkit", "virus",
		"rançongiciel", "schadsoftware",
	},
	"vulnerability-exploitation": {
		"vulnerability", "exploit", "exploitation", "cve", "rce",
		"overflow", "injection", "zeroday", "patch", "unpatched",
		"vulnerabilidad", "vulnérabilité", "schwachstelle", "vulnerabilidade",
	},
	"brute-force": {
		"bruteforce", "brute", "password", "guessing", "dictionary",
		"fuerza", "bruta",
	},
}

// seedCorpus provides short labelled documents so the class priors and
// co-occurring context words are grounded.
var seedCorpus = map[string][]string{
	"ddos": {
		"massive ddos attack takes down dns provider",
		"botnet launches amplification flood against bank",
		"ataque de denegación de servicio contra el portal",
	},
	"data-breach": {
		"security breach exposes customer records",
		"attackers leak stolen database dump online",
		"millions of credentials exposed after breach",
	},
	"phishing": {
		"phishing campaign uses spoofed invoice lure",
		"spearphishing emails target finance staff credentials",
	},
	"malware": {
		"new ransomware strain encrypts hospital systems",
		"trojan dropper installs backdoor and keylogger",
	},
	"vulnerability-exploitation": {
		"attackers exploit critical rce vulnerability in web framework",
		"unpatched cve under active exploitation patch now",
		"remote code execution via crafted post body",
	},
	"brute-force": {
		"ssh brute force attempts spike from residential proxies",
		"password guessing attack locks out accounts",
	},
	Irrelevant: {
		"quarterly earnings beat analyst expectations",
		"team wins championship after dramatic final",
		"new coffee shop opens downtown with live music",
		"weather forecast sunny with light winds",
		"release notes improve performance and fix typos",
		"conference schedule published keynote at nine",
	},
}
