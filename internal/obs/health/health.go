// Package health is the cluster-facing answer to "is this node alive,
// and is it ready to serve?" — a registry of named component checks
// (WAL writable, compaction backlog, mesh peer staleness, lifecycle
// scheduler liveness, hub saturation) aggregated into the /healthz and
// /readyz probes every daemon mounts and into the machine-readable
// verdict GET /cluster/status embeds. Checks are plain funcs evaluated
// on demand, so a probe always reflects the current state rather than a
// background snapshot.
package health

import (
	"encoding/json"
	"net/http"
	"sync"

	"github.com/caisplatform/caisp/internal/obs"
)

// Status is one check's (or the whole node's) verdict, ordered by
// severity so aggregation is a max.
type Status int

const (
	// OK: the component is fully operational.
	OK Status = iota
	// Degraded: the component works but something needs attention (a
	// stale peer, a growing backlog). The node stays live but reports
	// not-ready, so orchestrators stop routing new work to it.
	Degraded
	// Down: the component is broken (WAL not writable). Liveness fails.
	Down
)

// String renders the status the way probes and metrics label it.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// Result is one check evaluation: the verdict plus a human-readable
// reason (empty when OK).
type Result struct {
	Status Status
	Detail string
}

// Pass is the all-clear result.
func Pass() Result { return Result{Status: OK} }

// Degradedf flags a component as needing attention.
func Degradedf(detail string) Result { return Result{Status: Degraded, Detail: detail} }

// Downf flags a component as broken.
func Downf(detail string) Result { return Result{Status: Down, Detail: detail} }

// Check evaluates one component. Checks must be safe for concurrent
// calls and cheap enough to run on every probe.
type Check func() Result

// CheckResult is one named check's verdict in a Report.
type CheckResult struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Report is a full evaluation: the aggregate verdict (max severity
// across checks) plus every check's individual result, in registration
// order — the machine-readable degraded-reasons payload /readyz serves.
type Report struct {
	Status string        `json:"status"`
	Checks []CheckResult `json:"checks"`
}

// Registry holds a node's named checks. The zero value is not usable;
// construct with New.
type Registry struct {
	mu     sync.Mutex
	names  []string
	checks map[string]Check

	perCheck *obs.GaugeVec // caisp_health_check_status{check}
}

// New builds a check registry. When reg is non-nil, the registry
// registers caisp_health_status (aggregate verdict, evaluated at scrape
// time) and caisp_health_check_status{check} (per-check verdict,
// refreshed by every evaluation). Values encode OK=0, Degraded=1,
// Down=2.
func New(reg *obs.Registry) *Registry {
	r := &Registry{checks: make(map[string]Check)}
	if reg != nil {
		r.perCheck = reg.GaugeVec("caisp_health_check_status",
			"Per-component health verdict: 0 ok, 1 degraded, 2 down.", "check")
		reg.GaugeFunc("caisp_health_status",
			"Aggregate node health verdict: 0 ok, 1 degraded, 2 down.",
			func() float64 { return float64(r.eval().status()) })
	}
	return r
}

// Register adds (or replaces) a named check. Registration order is the
// report order.
func (r *Registry) Register(name string, c Check) {
	if r == nil || name == "" || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.checks[name]; !ok {
		r.names = append(r.names, name)
	}
	r.checks[name] = c
}

// evaluated is an internal evaluation result keeping the numeric
// verdicts alongside the wire report.
type evaluated struct {
	report Report
	worst  Status
}

func (e evaluated) status() Status { return e.worst }

// eval runs every check outside the registry lock (a check may itself
// take locks or do I/O) and refreshes the per-check gauge family.
func (r *Registry) eval() evaluated {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	checks := make([]Check, len(names))
	for i, n := range names {
		checks[i] = r.checks[n]
	}
	r.mu.Unlock()

	out := evaluated{report: Report{Checks: make([]CheckResult, 0, len(names))}}
	for i, c := range checks {
		res := c()
		if res.Status > out.worst {
			out.worst = res.Status
		}
		out.report.Checks = append(out.report.Checks, CheckResult{
			Name:   names[i],
			Status: res.Status.String(),
			Detail: res.Detail,
		})
		if r.perCheck != nil {
			r.perCheck.With(names[i]).Set(float64(res.Status))
		}
	}
	out.report.Status = out.worst.String()
	return out
}

// Evaluate runs every registered check and returns the aggregate
// report. Nil-safe: a nil registry reports OK with no checks.
func (r *Registry) Evaluate() Report {
	if r == nil {
		return Report{Status: OK.String(), Checks: []CheckResult{}}
	}
	return r.eval().report
}

// Liveness is the GET /healthz handler: 200 while the node is live
// (every check OK or merely Degraded), 503 with the full report once
// any check is Down. Orchestrators restart on liveness failure, so only
// broken-beyond-serving components (an unwritable WAL) may fail it.
func (r *Registry) Liveness() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ev := r.safeEval()
		if ev.status() >= Down {
			writeReport(w, http.StatusServiceUnavailable, ev.report)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
}

// Readiness is the GET /readyz handler: 200 with the report while every
// check passes, 503 with the machine-readable degraded reasons once any
// check is Degraded or Down. Load balancers drain on readiness failure
// while the node keeps serving its backlog.
func (r *Registry) Readiness() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		ev := r.safeEval()
		code := http.StatusOK
		if ev.status() >= Degraded {
			code = http.StatusServiceUnavailable
		}
		writeReport(w, code, ev.report)
	})
}

// safeEval is eval with nil-receiver tolerance for handler closures.
func (r *Registry) safeEval() evaluated {
	if r == nil {
		return evaluated{report: Report{Status: OK.String(), Checks: []CheckResult{}}}
	}
	return r.eval()
}

func writeReport(w http.ResponseWriter, code int, rep Report) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(rep)
}
