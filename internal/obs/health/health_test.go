package health

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/caisplatform/caisp/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func TestDirWritableTransitions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	check := DirWritable(dir)
	if res := check(); res.Status != OK {
		t.Fatalf("writable dir = %+v", res)
	}
	// The probe file must not linger between evaluations.
	if _, err := os.Stat(filepath.Join(dir, probeFile)); !os.IsNotExist(err) {
		t.Fatalf("probe file left behind: %v", err)
	}

	// The injected failure: the WAL directory vanishes out from under
	// the store. (chmod is useless under root, removal is not.)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	res := check()
	if res.Status != Down {
		t.Fatalf("removed dir = %+v, want Down", res)
	}
	if !strings.Contains(res.Detail, "not writable") {
		t.Fatalf("detail = %q", res.Detail)
	}

	// Recovery: recreate the directory, the same check passes again.
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if res := check(); res.Status != OK {
		t.Fatalf("recovered dir = %+v", res)
	}

	// Memory-only stores (empty dir) always pass.
	if res := DirWritable("")(); res.Status != OK {
		t.Fatalf("empty dir = %+v", res)
	}
}

func TestProgressStalledClock(t *testing.T) {
	var counter int64
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	check := Progress(func() int64 { return counter }, time.Minute, func() time.Time { return now })

	// First evaluation establishes the baseline — a fresh boot passes.
	if res := check(); res.Status != OK {
		t.Fatalf("baseline = %+v", res)
	}
	// Still inside the window: no progress required yet.
	now = now.Add(30 * time.Second)
	if res := check(); res.Status != OK {
		t.Fatalf("inside window = %+v", res)
	}
	// Stalled past the window: degraded, with the stuck value named.
	now = now.Add(2 * time.Minute)
	res := check()
	if res.Status != Degraded {
		t.Fatalf("stalled = %+v, want Degraded", res)
	}
	if !strings.Contains(res.Detail, "no progress") || !strings.Contains(res.Detail, "stuck at 0") {
		t.Fatalf("detail = %q", res.Detail)
	}
	// The counter moves: recovery is immediate even after a long stall.
	counter = 5
	if res := check(); res.Status != OK {
		t.Fatalf("advanced = %+v", res)
	}
	// And the stall timer restarts from the advance, not from boot.
	now = now.Add(59 * time.Second)
	if res := check(); res.Status != OK {
		t.Fatalf("restarted window = %+v", res)
	}
	now = now.Add(2 * time.Second)
	if res := check(); res.Status != Degraded {
		t.Fatalf("second stall = %+v, want Degraded", res)
	}
}

func TestMaxThreshold(t *testing.T) {
	v := 0.5
	check := Max("hub fill", func() float64 { return v }, 0.9)
	if res := check(); res.Status != OK {
		t.Fatalf("under limit = %+v", res)
	}
	v = 0.9 // at the limit is still fine; only exceeding degrades
	if res := check(); res.Status != OK {
		t.Fatalf("at limit = %+v", res)
	}
	v = 0.95
	res := check()
	if res.Status != Degraded {
		t.Fatalf("over limit = %+v, want Degraded", res)
	}
	if !strings.Contains(res.Detail, "hub fill") || !strings.Contains(res.Detail, "0.9") {
		t.Fatalf("detail = %q", res.Detail)
	}
}

func TestRegistryAggregationAndProbes(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(reg)

	status := map[string]Result{
		"wal_writable": Pass(),
		"mesh_peers":   Pass(),
	}
	// Registration order is report order; register out of alphabetical
	// order to prove it.
	r.Register("wal_writable", func() Result { return status["wal_writable"] })
	r.Register("mesh_peers", func() Result { return status["mesh_peers"] })

	// All green: /healthz 200 plain, /readyz 200 with the full report.
	if code, body := get(t, r.Liveness(), "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	code, body := get(t, r.Readiness(), "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" || len(rep.Checks) != 2 ||
		rep.Checks[0].Name != "wal_writable" || rep.Checks[1].Name != "mesh_peers" {
		t.Fatalf("report = %+v", rep)
	}

	// One degraded check: still live, no longer ready, reason named.
	status["mesh_peers"] = Degradedf("replication stale: peerX 120s behind")
	if code, _ := get(t, r.Liveness(), "/healthz"); code != http.StatusOK {
		t.Fatalf("degraded liveness = %d, want 200", code)
	}
	code, body = get(t, r.Readiness(), "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", code)
	}
	if !strings.Contains(body, `"status":"degraded"`) || !strings.Contains(body, "peerX") {
		t.Fatalf("degraded report = %s", body)
	}

	// A down check fails both probes.
	status["wal_writable"] = Downf("data dir not writable: gone")
	if code, body := get(t, r.Liveness(), "/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "not writable") {
		t.Fatalf("down liveness = %d %q", code, body)
	}
	if code, _ := get(t, r.Readiness(), "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("down readyz = %d", code)
	}
	if rep := r.Evaluate(); rep.Status != "down" {
		t.Fatalf("aggregate = %q, want down (max severity)", rep.Status)
	}

	// The verdicts land on the metrics surface too.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"caisp_health_status 2\n",
		`caisp_health_check_status{check="wal_writable"} 2`,
		`caisp_health_check_status{check="mesh_peers"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryNilAndReplace(t *testing.T) {
	var r *Registry
	if rep := r.Evaluate(); rep.Status != "ok" || len(rep.Checks) != 0 {
		t.Fatalf("nil registry report = %+v", rep)
	}
	if code, _ := get(t, r.Liveness(), "/healthz"); code != http.StatusOK {
		t.Fatal("nil registry liveness not 200")
	}
	if code, _ := get(t, r.Readiness(), "/readyz"); code != http.StatusOK {
		t.Fatal("nil registry readiness not 200")
	}
	r.Register("x", func() Result { return Pass() }) // no-op, no panic

	// Re-registering a name replaces the check without duplicating the
	// report entry.
	live := New(nil)
	live.Register("c", func() Result { return Pass() })
	live.Register("c", func() Result { return Degradedf("v2") })
	live.Register("", func() Result { return Pass() })  // ignored
	live.Register("n", nil)                             // ignored
	rep := live.Evaluate()
	if len(rep.Checks) != 1 || rep.Checks[0].Detail != "v2" {
		t.Fatalf("replaced report = %+v", rep)
	}
}

func TestStatusHandler(t *testing.T) {
	r := New(nil)
	r.Register("ok", func() Result { return Pass() })
	h := StatusHandler(func() NodeStatus {
		return NodeStatus{Node: "n1", Role: "tipd", Events: 3, StoreSeq: 9,
			Peers:  []PeerInfo{{Name: "n2", LagSeconds: 0.5}},
			Health: r.Evaluate()}
	})
	code, body := get(t, h, "/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var st NodeStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "n1" || st.Role != "tipd" || st.Events != 3 || st.StoreSeq != 9 ||
		len(st.Peers) != 1 || st.Peers[0].Name != "n2" || st.Health.Status != "ok" {
		t.Fatalf("round-trip = %+v", st)
	}
}
