package health

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// probeFile is the scratch file DirWritable creates and removes on each
// evaluation. Dot-prefixed so store snapshots and WAL scans ignore it.
const probeFile = ".caisp-health-probe"

// DirWritable probes that dir still accepts writes — the WAL-writable
// check: it creates a scratch file, writes a byte, syncs and removes
// it. Any failure is Down (the store cannot commit), which fails
// liveness so the orchestrator restarts onto, hopefully, healthier
// storage. An empty dir (memory-only store) always passes.
func DirWritable(dir string) Check {
	return func() Result {
		if dir == "" {
			return Pass()
		}
		path := filepath.Join(dir, probeFile)
		f, err := os.Create(path)
		if err != nil {
			return Downf(fmt.Sprintf("data dir not writable: %v", err))
		}
		_, werr := f.Write([]byte{1})
		serr := f.Sync()
		cerr := f.Close()
		rerr := os.Remove(path)
		for _, err := range []error{werr, serr, cerr, rerr} {
			if err != nil {
				return Downf(fmt.Sprintf("data dir write failed: %v", err))
			}
		}
		return Pass()
	}
}

// Progress degrades when a monotonic counter stops advancing — the
// scheduler-liveness pattern (lifecycle passes, analyzer flushes). The
// check remembers the last observed value and when it changed; once the
// counter sits still longer than within, the component is Degraded. The
// first evaluation establishes the baseline and passes, so a freshly
// booted node is not penalized for work it has not had time to do.
func Progress(fn func() int64, within time.Duration, now func() time.Time) Check {
	if now == nil {
		now = time.Now
	}
	var (
		mu      sync.Mutex
		last    int64
		lastAt  time.Time
		started bool
	)
	return func() Result {
		v := fn()
		t := now()
		mu.Lock()
		defer mu.Unlock()
		if !started || v != last {
			started = true
			last, lastAt = v, t
			return Pass()
		}
		if idle := t.Sub(lastAt); idle > within {
			return Degradedf(fmt.Sprintf("no progress for %s (stuck at %d)", idle.Round(time.Second), v))
		}
		return Pass()
	}
}

// Max degrades once a sampled value exceeds limit — the backlog /
// saturation pattern (WAL ops awaiting compaction, hub queue fill
// fraction). what names the value in the degraded reason.
func Max(what string, fn func() float64, limit float64) Check {
	return func() Result {
		if v := fn(); v > limit {
			return Degradedf(fmt.Sprintf("%s %.6g exceeds %.6g", what, v, limit))
		}
		return Pass()
	}
}
