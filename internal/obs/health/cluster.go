package health

import (
	"encoding/json"
	"net/http"
	"runtime"
)

// PeerInfo is one replication peer's watermark as seen from this node —
// the mesh engine's per-peer state projected onto the fleet view.
type PeerInfo struct {
	Name string `json:"name"`
	// Cursor is the durable high-water mark into the peer's change feed.
	Cursor uint64 `json:"cursor"`
	// LastSuccessUnix is when the last fully drained sync round against
	// the peer completed (Unix seconds; 0 when none succeeded yet).
	LastSuccessUnix int64 `json:"last_success_unix"`
	// LagSeconds is the replication lag: age of the newest event pulled
	// in the last drained round while healthy, or seconds since the last
	// success while the peer is failing.
	LagSeconds float64 `json:"lag_seconds"`
	// BackoffSeconds is the current failure backoff (0 while healthy).
	BackoffSeconds float64 `json:"backoff_seconds"`
	// Failures counts consecutive failed sync attempts.
	Failures int64 `json:"failures"`
	// LastError is the most recent sync error (empty while healthy).
	LastError string `json:"last_error,omitempty"`
}

// NodeStatus is the GET /cluster/status payload: one node's identity,
// store watermarks, peer lag and health verdict — everything caisp-top
// needs to render a fleet row without scraping /metrics.
type NodeStatus struct {
	Node      string `json:"node"`
	Role      string `json:"role"`
	GoVersion string `json:"go_version"`
	// StoreSeq is the node's own ingest-sequence high-water mark — the
	// value peer cursors chase.
	StoreSeq uint64 `json:"store_seq"`
	// Events is the live event count in the store.
	Events int `json:"events"`
	// WALOps counts operations appended since the last compaction
	// (the compaction backlog).
	WALOps int `json:"wal_ops"`
	// IngestTotal counts events stored since boot (adds + edits),
	// the counter caisp-top differentiates into a rate.
	IngestTotal int64 `json:"ingest_total"`
	// Clients is the number of connected dashboard/match websockets.
	Clients int `json:"clients"`
	// Peers lists the node's replication peers, empty off-mesh.
	Peers []PeerInfo `json:"peers,omitempty"`
	// Health is the full check report (the /readyz payload inline).
	Health Report `json:"health"`
}

// StatusHandler serves GET /cluster/status from a snapshot function.
// The handler stamps GoVersion itself so callers only fill what they
// know.
func StatusHandler(fn func() NodeStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := fn()
		if st.GoVersion == "" {
			st.GoVersion = runtime.Version()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
}
