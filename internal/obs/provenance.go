package obs

import (
	"sync"
	"time"
)

// Hop is one replication step of an event's journey across the mesh: the
// node that pulled the event and when it pulled it. Hops accumulate in
// order, so the gap between consecutive pull times is the dwell time on
// the intermediate node — poll interval plus import cost, measured from
// real traffic rather than inferred from configuration.
type Hop struct {
	Node           string `json:"node"`
	PulledUnixNano int64  `json:"pulled_unix_nano"`
}

// Provenance is the compact cross-node trace context carried on mesh
// wire items (a "Provenance" sibling of the "Event" key on change-feed
// pages). The origin node stamps it at ingest; every node that imports
// the event appends one Hop before forwarding, so the terminal node of
// any replication path can reconstruct the full multi-hop journey and
// its per-hop latencies.
type Provenance struct {
	// Origin names the node that first ingested the event.
	Origin string `json:"origin"`
	// OriginSeq is the event's ingest sequence on the origin node — the
	// position in the origin's change feed the event first appeared at.
	OriginSeq uint64 `json:"origin_seq"`
	// IngestUnixNano is the origin's ingest wall time. Zero when the
	// origin predates provenance tracking (the event was recovered from
	// a WAL written before the table existed); latency observations are
	// skipped for such events rather than fabricated.
	IngestUnixNano int64 `json:"ingest_unix_nano,omitempty"`
	// Hops records every node that imported the event after the origin,
	// in pull order.
	Hops []Hop `json:"hops,omitempty"`
}

// Clone returns a deep copy safe to mutate (append hops) without
// aliasing the table's stored value.
func (p *Provenance) Clone() *Provenance {
	if p == nil {
		return nil
	}
	out := *p
	out.Hops = append([]Hop(nil), p.Hops...)
	return &out
}

// DefaultProvCap bounds a ProvTable: provenance is a trace sidecar, not
// durable state, so the table forgets oldest-first once full. A node
// serving an evicted (or pre-table) event synthesizes origin-only
// provenance at the wire instead.
const DefaultProvCap = 65536

// ProvTable is a bounded in-memory map from event UUID to the latest
// known provenance of that revision. The TIP service records local
// ingests as origins; the mesh engine replaces entries with forwarded
// provenance (origin + accumulated hops) when a revision arrives by
// replication. Eviction is FIFO by insertion order, mirroring the
// tracer's bounded active set. All methods are safe for concurrent use
// and no-op on a nil receiver.
type ProvTable struct {
	mu   sync.Mutex
	m    map[string]*Provenance
	fifo []string
	cap  int
}

// NewProvTable builds a table bounded at capacity (DefaultProvCap when
// capacity <= 0).
func NewProvTable(capacity int) *ProvTable {
	if capacity <= 0 {
		capacity = DefaultProvCap
	}
	return &ProvTable{m: make(map[string]*Provenance), cap: capacity}
}

// RecordLocal stamps uuid as originating on node at now. The ingest
// sequence is filled in lazily at serve time (the change feed knows the
// exact per-event sequence; the group-commit path does not).
func (t *ProvTable) RecordLocal(uuid, node string, now time.Time) {
	if t == nil || uuid == "" {
		return
	}
	t.put(uuid, &Provenance{Origin: node, IngestUnixNano: now.UnixNano()})
}

// Record replaces uuid's provenance wholesale — the mesh import path,
// storing the forwarded context with this node's hop already appended.
func (t *ProvTable) Record(uuid string, p *Provenance) {
	if t == nil || uuid == "" || p == nil {
		return
	}
	t.put(uuid, p.Clone())
}

func (t *ProvTable) put(uuid string, p *Provenance) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[uuid]; !ok {
		if len(t.m) >= t.cap {
			t.evictOldestLocked()
		}
		t.fifo = append(t.fifo, uuid)
	}
	t.m[uuid] = p
}

func (t *ProvTable) evictOldestLocked() {
	for len(t.fifo) > 0 {
		victim := t.fifo[0]
		t.fifo = t.fifo[1:]
		if _, ok := t.m[victim]; ok {
			delete(t.m, victim)
			return
		}
	}
}

// Lookup returns a copy of uuid's provenance, or nil when unknown.
func (t *ProvTable) Lookup(uuid string) *Provenance {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[uuid].Clone()
}

// Len reports the number of tracked UUIDs.
func (t *ProvTable) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
