// Package obs is the platform's observability layer: a dependency-free,
// Prometheus-text-compatible metrics registry plus a per-event stage
// tracer (trace.go). Every pipeline package registers its caisp_* metric
// families into one Registry owned by the running daemon; GET /metrics
// renders the whole registry in Prometheus exposition format.
//
// The registry is built for hot paths: counters and gauges are single
// atomics, histograms are fixed-bucket atomic arrays, and the entire API
// degrades to no-ops through nil receivers — constructing metrics from a
// nil *Registry yields nil handles whose methods return immediately, so
// the un-instrumented ablation (core's DisableMetrics, the bench-obs
// baseline) pays only a nil check per call site.
//
// Metric names must match ^caisp_[a-z_]+$ and may be registered exactly
// once per Registry; both rules are enforced at registration time (panic)
// and by `make metrics-lint`.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds: 1µs to
// 10s, covering everything from a lock-free counter bump to a blocking
// compaction stall.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are histogram bounds for batch/record counts.
var SizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// metricKind tags a family for the TYPE line of the exposition.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one registered metric name: its metadata plus either a set of
// labeled children or a single unlabeled child.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // label names for vec families, nil otherwise

	mu       sync.Mutex
	children map[string]child // label-values key → child; "" for unlabeled
	order    []string         // registration order of children keys
}

// child is anything that can render sample lines for one label set.
type child interface {
	sample() sample
}

// sample is the rendered value(s) of one child.
type sample struct {
	value float64 // counters and gauges
	hist  *HistogramSnapshot
}

// Registry holds metric families and renders them in Prometheus text
// format. A nil *Registry is the no-op registry: every constructor
// returns a nil handle and WritePrometheus renders nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; sorted at render time
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name matches ^caisp_[a-z_]+$.
func validName(name string) bool {
	if !strings.HasPrefix(name, "caisp_") || len(name) == len("caisp_") {
		return false
	}
	for i := len("caisp_"); i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && c != '_' {
			return false
		}
	}
	return true
}

// register installs a new family, enforcing the naming and exactly-once
// rules. Caller state is programmer error, hence panic.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: metric name %q does not match caisp_[a-z_]+", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		children: make(map[string]child),
	}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

// child resolves (creating if needed) the child for one label-values key.
func (f *family) child(key string, mk func() child) child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := mk()
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// Names returns the registered family names, sorted. Nil-safe.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotonically increasing value. Nil receivers no-op.
type Counter struct {
	v atomic.Int64
}

func (c *Counter) sample() sample { return sample{value: float64(c.v.Load())} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers an unlabeled counter. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	f := r.register(name, help, kindCounter, nil)
	f.child("", func() child { return c })
	return c
}

// funcChild renders a value computed at scrape time.
type funcChild struct {
	fn func() float64
}

func (fc funcChild) sample() sample { return sample{value: fc.fn()} }

// CounterFunc registers a counter whose value is computed at scrape time
// — the bridge from pre-existing atomic stats counters into the registry
// without double bookkeeping. fn must be monotonic and safe for
// concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindCounter, nil)
	f.child("", func() child { return funcChild{fn: fn} })
}

// Gauge is a value that can go up and down. Nil receivers no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

func (g *Gauge) sample() sample { return sample{value: g.Value()} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value. Nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers an unlabeled gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	f := r.register(name, help, kindGauge, nil)
	f.child("", func() child { return g })
	return g
}

// GaugeFunc registers a gauge computed at scrape time. fn must be safe
// for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindGauge, nil)
	f.child("", func() child { return funcChild{fn: fn} })
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram is a fixed-bucket latency/size distribution. Observe is
// lock-free: a binary search over the bounds plus two atomic adds.
// Nil receivers no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1), // +1 for +Inf
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds (seconds for latency
	// histograms); Counts[i] is the number of observations <= Bounds[i]
	// (cumulative, Prometheus-style), with Counts[len(Bounds)] the +Inf
	// total.
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot returns a consistent-enough view for exposition: per-bucket
// counts are read atomically and cumulated. Nil-safe (nil snapshot).
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return nil
	}
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	return s
}

func (h *Histogram) sample() sample { return sample{hist: h.Snapshot()} }

// Histogram registers an unlabeled histogram with the given bucket upper
// bounds (DefBuckets when empty). Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(buckets)
	f := r.register(name, help, kindHistogram, nil)
	f.child("", func() child { return h })
	return h
}

// ---------------------------------------------------------------------------
// Labeled families

// labelKey joins label values into a map key ('\xff' cannot appear in
// valid UTF-8 label values produced by this codebase).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// CounterVec is a counter family with labels. Nil receivers no-op.
type CounterVec struct {
	f *family
}

// With resolves the child counter for the given label values (one per
// label name, in registration order). Nil-safe (nil child).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	c := v.f.child(labelKey(values), func() child { return &Counter{} })
	return c.(*Counter)
}

// CounterVec registers a labeled counter family. Returns nil on a nil
// registry.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// GaugeVec is a gauge family with labels. Nil receivers no-op.
type GaugeVec struct {
	f *family
}

// With resolves the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	g := v.f.child(labelKey(values), func() child { return &Gauge{} })
	return g.(*Gauge)
}

// GaugeVec registers a labeled gauge family. Returns nil on a nil
// registry.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// HistogramVec is a histogram family with labels. Nil receivers no-op.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// With resolves the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	h := v.f.child(labelKey(values), func() child { return newHistogram(v.buckets) })
	return h.(*Histogram)
}

// HistogramVec registers a labeled histogram family sharing one bucket
// layout (DefBuckets when nil). Returns nil on a nil registry.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{
		f:       r.register(name, help, kindHistogram, labels),
		buckets: buckets,
	}
}
