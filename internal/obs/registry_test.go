package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("caisp_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative adds are ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("caisp_test_depth", "depth")
	g.Set(2.5)
	g.Add(1.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %g, want 4", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	// Every constructor on a nil registry returns a nil handle whose
	// methods no-op — the WithNoopMetrics ablation.
	r.Counter("caisp_x", "x").Inc()
	r.Gauge("caisp_x", "x").Set(1)
	r.Histogram("caisp_x", "x").Observe(1)
	r.CounterFunc("caisp_x", "x", func() float64 { return 1 })
	r.GaugeFunc("caisp_x", "x", func() float64 { return 1 })
	r.CounterVec("caisp_x", "x", "l").With("v").Inc()
	r.GaugeVec("caisp_x", "x", "l").With("v").Set(1)
	r.HistogramVec("caisp_x", "x", nil, "l").With("v").Observe(1)
	if names := r.Names(); names != nil {
		t.Fatalf("nil registry names = %v", names)
	}
	var tr *Tracer
	tr.Start("a")
	tr.Mark("a", StageIngest)
	tr.Adopt("b", StageCorrelate, []string{"a"})
	tr.Drop("a")
	tr.Finish("b", StagePublish)
	if tr.Active() != 0 || tr.Slowest() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "nope", "caisp_", "caisp_Upper", "caisp_has1digit"} {
		name := name
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", name)
				}
			}()
			r.Counter(name, "bad")
		}()
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("caisp_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	r.Counter("caisp_dup_total", "second")
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("caisp_hist_seconds", "h", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 50; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	// Cumulative counts per bound: ≤0.1 → 1, ≤1 → 3, ≤10 → 4, +Inf → 5.
	wantCum := []int64{1, 3, 4, 5}
	for i, want := range wantCum {
		if s.Counts[i] != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("caisp_conc_seconds", "h")
	c := r.Counter("caisp_conc_total", "c")
	vec := r.CounterVec("caisp_conc_vec_total", "v", "worker")
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				h.Observe(float64(i) / iters)
				c.Inc()
				vec.With(label).Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if s := h.Snapshot(); s.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", s.Count, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := vec.With(string(rune('a' + w))).Value(); got != iters {
			t.Fatalf("vec[%d] = %d, want %d", w, got, iters)
		}
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("caisp_arity_total", "v", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity accepted")
		}
	}()
	vec.With("only-one")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("caisp_requests_total", "Requests served.").Add(3)
	r.Gauge("caisp_queue_depth", "Queue depth.").Set(2)
	r.Histogram("caisp_latency_seconds", "Latency.", 0.1, 1).Observe(0.5)
	r.CounterVec("caisp_errors_total", "Errors.", "stage").With("in\"g\\est\n").Inc()
	r.GaugeFunc("caisp_live_value", "Live.", func() float64 { return 7.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP caisp_requests_total Requests served.\n",
		"# TYPE caisp_requests_total counter\n",
		"caisp_requests_total 3\n",
		"# TYPE caisp_queue_depth gauge\n",
		"caisp_queue_depth 2\n",
		"# TYPE caisp_latency_seconds histogram\n",
		`caisp_latency_seconds_bucket{le="0.1"} 0`,
		`caisp_latency_seconds_bucket{le="1"} 1`,
		`caisp_latency_seconds_bucket{le="+Inf"} 1`,
		"caisp_latency_seconds_sum 0.5\n",
		"caisp_latency_seconds_count 1\n",
		// Label escaping: backslash, quote and newline.
		`caisp_errors_total{stage="in\"g\\est\n"} 1`,
		"caisp_live_value 7.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families render in sorted order.
	if strings.Index(out, "caisp_errors_total") > strings.Index(out, "caisp_latency_seconds") {
		t.Fatal("families not sorted")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("caisp_handler_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "caisp_handler_total 1") {
		t.Fatalf("handler body:\n%s", buf[:n])
	}
}
