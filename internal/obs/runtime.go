package obs

import (
	"runtime"
	"sync"
	"time"
)

// memStatsTTL bounds how often the runtime gauges call
// runtime.ReadMemStats: the read briefly stops the world, and one scrape
// renders several families off the same snapshot, so a short cache keeps
// a scrape to at most one read without going stale between scrapes.
const memStatsTTL = time.Second

// memReader caches one runtime.MemStats snapshot for all the registered
// GaugeFuncs/CounterFuncs that render from it.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > memStatsTTL {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return m.stat
}

// RegisterRuntime exposes the Go runtime's health signals as scrape-time
// views: live goroutine count, heap in use, and cumulative GC pause
// time. Nil-safe; a nil registry registers nothing.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	mem := &memReader{}
	reg.GaugeFunc("caisp_go_goroutines",
		"Goroutines currently live in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("caisp_go_heap_bytes",
		"Heap bytes in use (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(mem.read().HeapAlloc) })
	reg.CounterFunc("caisp_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(mem.read().PauseTotalNs) / 1e9 })
	reg.CounterFunc("caisp_go_gc_cycles_total",
		"Completed garbage collection cycles.",
		func() float64 { return float64(mem.read().NumGC) })
}

// Version is the build version stamped on caisp_build_info. Overridable
// at link time (-ldflags "-X ...obs.Version=v1.2.3"); defaults to the
// development placeholder.
var Version = "dev"

// RegisterBuildInfo exposes caisp_build_info: a constant-1 gauge whose
// labels carry the build version and Go toolchain, the conventional
// join key for version rollout dashboards. Nil-safe.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeVec("caisp_build_info",
		"Build metadata; the value is always 1.",
		"version", "goversion").With(Version, runtime.Version()).Set(1)
}
