package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock steps a deterministic tracer clock.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }

func newTestTracer(t *testing.T, opts ...TracerOption) (*Tracer, *fakeClock, *Registry) {
	t.Helper()
	clk := &fakeClock{at: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
	reg := NewRegistry()
	tr := NewTracer(reg, append([]TracerOption{WithNow(clk.now)}, opts...)...)
	if tr == nil {
		t.Fatal("NewTracer returned nil for non-nil registry")
	}
	return tr, clk, reg
}

func TestTracerNilRegistry(t *testing.T) {
	if tr := NewTracer(nil); tr != nil {
		t.Fatal("nil registry should yield nil tracer")
	}
}

func TestTracerEndToEnd(t *testing.T) {
	tr, clk, _ := newTestTracer(t)

	tr.Start("evt")
	clk.advance(10 * time.Millisecond)
	tr.Mark("evt", StageIngest)
	clk.advance(20 * time.Millisecond)
	tr.Adopt("cluster", StageCorrelate, []string{"evt", "ghost"})
	clk.advance(30 * time.Millisecond)
	tr.Mark("cluster", StageStore)
	clk.advance(40 * time.Millisecond)
	tr.Mark("cluster", StageAnalyze)
	clk.advance(50 * time.Millisecond)
	tr.Finish("cluster", StagePublish)

	if tr.Active() != 0 {
		t.Fatalf("active = %d after finish", tr.Active())
	}
	recs := tr.Slowest()
	if len(recs) != 1 {
		t.Fatalf("slowest = %d records", len(recs))
	}
	rec := recs[0]
	if rec.ID != "cluster" {
		t.Fatalf("trace finished under %q", rec.ID)
	}
	if rec.TotalMS != 150 {
		t.Fatalf("total = %gms, want 150", rec.TotalMS)
	}
	wantSpans := map[string]float64{
		StageIngest:    10,
		StageCorrelate: 20,
		StageStore:     30,
		StageAnalyze:   40,
		StagePublish:   50,
	}
	if len(rec.Stages) != len(wantSpans) {
		t.Fatalf("stages = %v", rec.Stages)
	}
	for _, s := range rec.Stages {
		if wantSpans[s.Stage] != s.MS {
			t.Fatalf("stage %s = %gms, want %g", s.Stage, s.MS, wantSpans[s.Stage])
		}
	}
}

func TestTracerAdoptKeepsEarliestMember(t *testing.T) {
	tr, clk, _ := newTestTracer(t)
	tr.Start("old")
	clk.advance(time.Second)
	tr.Start("young")
	clk.advance(time.Second)
	tr.Adopt("cluster", StageCorrelate, []string{"young", "old"})
	if tr.Active() != 1 {
		t.Fatalf("active = %d, want 1 (members merged)", tr.Active())
	}
	clk.advance(time.Second)
	tr.Finish("cluster", StagePublish)
	recs := tr.Slowest()
	if len(recs) != 1 || recs[0].TotalMS != 3000 {
		t.Fatalf("adopted trace = %+v, want the 3s journey of the oldest member", recs)
	}
}

func TestTracerDropAndUnknownMarks(t *testing.T) {
	tr, clk, reg := newTestTracer(t)
	tr.Start("a")
	tr.Drop("a")
	if tr.Active() != 0 {
		t.Fatal("drop left trace active")
	}
	// Marks and finishes of unknown ids are ignored.
	tr.Mark("ghost", StageIngest)
	tr.Finish("ghost", StagePublish)
	clk.advance(time.Millisecond)
	if got := tr.Slowest(); len(got) != 0 {
		t.Fatalf("slowest = %v", got)
	}
	_ = reg
}

func TestTracerEviction(t *testing.T) {
	tr, _, _ := newTestTracer(t, WithMaxActive(2))
	tr.Start("a")
	tr.Start("b")
	tr.Start("c") // evicts a
	if tr.Active() != 2 {
		t.Fatalf("active = %d, want 2", tr.Active())
	}
	tr.Mark("a", StageIngest) // ignored: evicted
	tr.Finish("a", StagePublish)
	if got := tr.Slowest(); len(got) != 0 {
		t.Fatalf("evicted trace finished: %v", got)
	}
}

func TestTracerKeepSlowest(t *testing.T) {
	tr, clk, _ := newTestTracer(t, WithKeepSlowest(2))
	for i, d := range []time.Duration{30, 10, 20, 40} {
		id := string(rune('a' + i))
		tr.Start(id)
		clk.advance(d * time.Millisecond)
		tr.Finish(id, StagePublish)
	}
	recs := tr.Slowest()
	if len(recs) != 2 {
		t.Fatalf("kept %d records", len(recs))
	}
	if recs[0].TotalMS != 40 || recs[1].TotalMS != 30 {
		t.Fatalf("slowest = %g, %g; want 40, 30", recs[0].TotalMS, recs[1].TotalMS)
	}
}

func TestTracerHistogramsPopulated(t *testing.T) {
	tr, clk, reg := newTestTracer(t)
	tr.Start("x")
	clk.advance(5 * time.Millisecond)
	tr.Mark("x", StageIngest)
	clk.advance(5 * time.Millisecond)
	tr.Finish("x", StagePublish)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`caisp_trace_stage_seconds_count{stage="ingest"} 1`,
		`caisp_trace_stage_seconds_count{stage="publish"} 1`,
		"caisp_trace_end_to_end_seconds_count 1",
		"caisp_trace_finished_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTracesHandler(t *testing.T) {
	tr, clk, _ := newTestTracer(t)
	tr.Start("j")
	clk.advance(7 * time.Millisecond)
	tr.Finish("j", StagePublish)

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var recs []TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "j" || recs[0].TotalMS != 7 {
		t.Fatalf("traces = %+v", recs)
	}

	// A nil tracer's handler serves an empty array, not an error.
	var nilTr *Tracer
	srv2 := httptest.NewServer(nilTr.Handler())
	defer srv2.Close()
	resp2, err := srv2.Client().Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty []TraceRecord
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("nil tracer served %+v", empty)
	}
}
