package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), families and children in sorted
// order. Nil-safe: a nil registry renders nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

// write renders one family: HELP and TYPE headers plus one block of
// sample lines per child, children sorted by label values.
func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	children := make([]child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	sort.Sort(&childSort{keys: keys, children: children})

	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(string(f.kind))
	w.WriteByte('\n')

	for i, c := range children {
		s := c.sample()
		labels := f.labelPairs(keys[i])
		if f.kind == kindHistogram && s.hist != nil {
			writeHistogram(w, f.name, labels, s.hist)
			continue
		}
		w.WriteString(f.name)
		writeLabels(w, labels, "")
		w.WriteByte(' ')
		w.WriteString(formatValue(s.value))
		w.WriteByte('\n')
	}
}

// labelPairs splits a child key back into name=value pairs.
func (f *family) labelPairs(key string) []string {
	if len(f.labels) == 0 {
		return nil
	}
	values := strings.Split(key, "\xff")
	pairs := make([]string, 0, len(f.labels)*2)
	for i, name := range f.labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		pairs = append(pairs, name, v)
	}
	return pairs
}

// writeLabels renders {a="b",c="d"} with an optional extra le pair for
// histogram buckets. Writes nothing when there are no labels.
func writeLabels(w *bufio.Writer, pairs []string, le string) {
	if len(pairs) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	first := true
	for i := 0; i+1 < len(pairs); i += 2 {
		if !first {
			w.WriteByte(',')
		}
		first = false
		w.WriteString(pairs[i])
		w.WriteString(`="`)
		w.WriteString(escapeLabel(pairs[i+1]))
		w.WriteByte('"')
	}
	if le != "" {
		if !first {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count.
func writeHistogram(w *bufio.Writer, name string, labels []string, s *HistogramSnapshot) {
	for i, bound := range s.Bounds {
		w.WriteString(name)
		w.WriteString("_bucket")
		writeLabels(w, labels, formatValue(bound))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(s.Counts[i], 10))
		w.WriteByte('\n')
	}
	w.WriteString(name)
	w.WriteString("_bucket")
	writeLabels(w, labels, "+Inf")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(s.Counts[len(s.Bounds)], 10))
	w.WriteByte('\n')

	w.WriteString(name)
	w.WriteString("_sum")
	writeLabels(w, labels, "")
	w.WriteByte(' ')
	w.WriteString(formatValue(s.Sum))
	w.WriteByte('\n')

	w.WriteString(name)
	w.WriteString("_count")
	writeLabels(w, labels, "")
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(s.Count, 10))
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus clients expect:
// integers without exponent, everything else in shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// childSort orders children by their label-values key, keeping the keys
// and children slices aligned.
type childSort struct {
	keys     []string
	children []child
}

func (c *childSort) Len() int           { return len(c.keys) }
func (c *childSort) Less(i, j int) bool { return c.keys[i] < c.keys[j] }
func (c *childSort) Swap(i, j int) {
	c.keys[i], c.keys[j] = c.keys[j], c.keys[i]
	c.children[i], c.children[j] = c.children[j], c.children[i]
}

// Handler serves the registry as GET /metrics. Nil-safe: a nil registry
// serves an empty exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on an explicit mux (daemons opt in with a flag; nothing is mounted on
// http.DefaultServeMux).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
