package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestProvTableRecordAndLookupCopies(t *testing.T) {
	tab := NewProvTable(8)
	at := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	tab.RecordLocal("u1", "node0", at)

	got := tab.Lookup("u1")
	if got == nil || got.Origin != "node0" || got.IngestUnixNano != at.UnixNano() {
		t.Fatalf("local provenance = %+v", got)
	}
	// Lookup hands back a copy: mutating it must not leak into the table.
	got.Origin = "tampered"
	got.Hops = append(got.Hops, Hop{Node: "x"})
	if fresh := tab.Lookup("u1"); fresh.Origin != "node0" || len(fresh.Hops) != 0 {
		t.Fatalf("lookup aliases table state: %+v", fresh)
	}

	// Record replaces wholesale (the mesh import path) and clones its
	// input, so the caller may keep appending hops afterwards.
	fwd := &Provenance{Origin: "node0", OriginSeq: 42, IngestUnixNano: at.UnixNano(),
		Hops: []Hop{{Node: "node1", PulledUnixNano: at.Add(time.Second).UnixNano()}}}
	tab.Record("u1", fwd)
	fwd.Hops[0].Node = "tampered"
	stored := tab.Lookup("u1")
	if stored.OriginSeq != 42 || len(stored.Hops) != 1 || stored.Hops[0].Node != "node1" {
		t.Fatalf("record aliases caller slice: %+v", stored)
	}

	if tab.Lookup("unknown") != nil {
		t.Fatal("unknown uuid yielded provenance")
	}
}

func TestProvTableFIFOEviction(t *testing.T) {
	tab := NewProvTable(3)
	at := time.Unix(0, 0)
	for _, u := range []string{"a", "b", "c"} {
		tab.RecordLocal(u, "n", at)
	}
	// Re-recording an existing uuid must not evict anyone.
	tab.Record("a", &Provenance{Origin: "other"})
	if tab.Len() != 3 || tab.Lookup("a") == nil {
		t.Fatalf("replacement evicted: len=%d", tab.Len())
	}
	// A fourth distinct uuid evicts the oldest insertion (a).
	tab.RecordLocal("d", "n", at)
	if tab.Len() != 3 {
		t.Fatalf("len = %d, want 3", tab.Len())
	}
	if tab.Lookup("a") != nil {
		t.Fatal("oldest entry survived eviction")
	}
	for _, u := range []string{"b", "c", "d"} {
		if tab.Lookup(u) == nil {
			t.Fatalf("entry %q lost", u)
		}
	}
}

func TestProvTableNilSafe(t *testing.T) {
	var tab *ProvTable
	tab.RecordLocal("u", "n", time.Unix(0, 0))
	tab.Record("u", &Provenance{Origin: "n"})
	if tab.Lookup("u") != nil || tab.Len() != 0 {
		t.Fatal("nil table not inert")
	}
	var p *Provenance
	if p.Clone() != nil {
		t.Fatal("nil provenance clone not nil")
	}
}

func TestRecordImportHopLatencies(t *testing.T) {
	tr, clk, _ := newTestTracer(t)
	ingest := clk.at
	clk.advance(5 * time.Second) // "now" on the terminal node

	p := &Provenance{
		Origin:         "node0",
		OriginSeq:      7,
		IngestUnixNano: ingest.UnixNano(),
		Hops: []Hop{
			{Node: "node1", PulledUnixNano: ingest.Add(2 * time.Second).UnixNano()},
			{Node: "node2", PulledUnixNano: ingest.Add(3500 * time.Millisecond).UnixNano()},
		},
	}
	tr.RecordImport("uuid-1", p)

	imports := tr.Imports()
	if len(imports) != 1 {
		t.Fatalf("imports = %d", len(imports))
	}
	rec := imports[0]
	if rec.ID != "uuid-1" || rec.Origin != "node0" || rec.OriginSeq != 7 {
		t.Fatalf("record identity = %+v", rec)
	}
	if rec.TotalMS != 5000 {
		t.Fatalf("total = %gms, want 5000", rec.TotalMS)
	}
	// First hop dwells since origin ingest, second since the first pull.
	if len(rec.Hops) != 2 || rec.Hops[0].MS != 2000 || rec.Hops[1].MS != 1500 {
		t.Fatalf("hop spans = %+v", rec.Hops)
	}
}

func TestRecordImportWithoutTimestamps(t *testing.T) {
	tr, _, _ := newTestTracer(t)
	// Pre-table upstream: no ingest time. Dwell is unknown, not zero.
	tr.RecordImport("uuid-2", &Provenance{Origin: "old-node",
		Hops: []Hop{{Node: "here", PulledUnixNano: 0}}})
	rec := tr.Imports()[0]
	if rec.TotalMS != 0 {
		t.Fatalf("fabricated e2e latency: %g", rec.TotalMS)
	}
	if len(rec.Hops) != 1 || rec.Hops[0].MS != -1 {
		t.Fatalf("hop spans = %+v, want unknown (-1)", rec.Hops)
	}
}

func TestImportsRingNewestFirst(t *testing.T) {
	tr, _, _ := newTestTracer(t, WithKeepSlowest(2))
	for _, id := range []string{"a", "b", "c"} {
		tr.RecordImport(id, &Provenance{Origin: "o"})
	}
	imports := tr.Imports()
	if len(imports) != 2 || imports[0].ID != "c" || imports[1].ID != "b" {
		t.Fatalf("ring = %+v, want [c b]", imports)
	}
}

func TestTracesHandlerServesImports(t *testing.T) {
	tr, clk, _ := newTestTracer(t)
	ingest := clk.at
	clk.advance(time.Second)
	tr.RecordImport("uuid-3", &Provenance{Origin: "node0", OriginSeq: 9,
		IngestUnixNano: ingest.UnixNano(),
		Hops:           []Hop{{Node: "node1", PulledUnixNano: clk.at.UnixNano()}}})

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []TraceRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ID == "uuid-3" && r.Origin == "node0" && len(r.Hops) == 1 && r.Hops[0].Node == "node1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("import trace not served: %+v", recs)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("content type = %q", resp.Header.Get("Content-Type"))
	}
}
