package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramInfBucketCumulative pins the exposition contract for
// observations past the last configured bound: they must appear only in
// the +Inf bucket, the bucket series must be cumulative, and _count
// must equal the +Inf bucket.
func TestHistogramInfBucketCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("caisp_test_span_seconds", "Spans.", 0.1, 1, 10)
	// Power-of-two observations keep the sum exact in binary floating
	// point, so the _sum assertion is not at the mercy of rounding.
	for _, v := range []float64{0.0625, 0.5, 5, 50, 500} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`caisp_test_span_seconds_bucket{le="0.1"} 1`,
		`caisp_test_span_seconds_bucket{le="1"} 2`,
		`caisp_test_span_seconds_bucket{le="10"} 3`,
		`caisp_test_span_seconds_bucket{le="+Inf"} 5`,
		"caisp_test_span_seconds_count 5\n",
		"caisp_test_span_seconds_sum 555.5625\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The +Inf line must come after the finite bounds (ascending le).
	if strings.Index(out, `le="+Inf"`) < strings.Index(out, `le="10"`) {
		t.Fatal("+Inf bucket rendered before finite bounds")
	}
}

// TestLabelEscapingEdgeCases covers the three characters the Prometheus
// text format requires escaping in label values, plus newline/backslash
// escaping in HELP lines.
func TestLabelEscapingEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("caisp_test_escape", "Line one.\nLine\\two.", "path").
		With(`C:\temp\"quoted"` + "\nnext").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Label value: backslash -> \\, quote -> \", newline -> \n.
	wantSeries := `caisp_test_escape{path="C:\\temp\\\"quoted\"\nnext"} 1`
	if !strings.Contains(out, wantSeries) {
		t.Fatalf("escaped series missing, want %q in:\n%s", wantSeries, out)
	}
	// HELP: backslash and newline escaped, quotes left alone.
	wantHelp := `# HELP caisp_test_escape Line one.\nLine\\two.`
	if !strings.Contains(out, wantHelp) {
		t.Fatalf("escaped help missing, want %q in:\n%s", wantHelp, out)
	}
	// The raw newline must never reach the wire inside a series line.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "caisp_test_escape{") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("series line split by unescaped newline: %q", line)
		}
	}
}

// TestVecChildrenSortedByLabelValue pins deterministic scrape output:
// children of one family render sorted by label value, families by
// name, regardless of touch order.
func TestVecChildrenSortedByLabelValue(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("caisp_test_sorted_total", "Sorted.", "peer")
	for _, peer := range []string{"zeta", "alpha", "mid"} {
		v.With(peer).Inc()
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	ia := strings.Index(out, `peer="alpha"`)
	im := strings.Index(out, `peer="mid"`)
	iz := strings.Index(out, `peer="zeta"`)
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("children not sorted by label value (alpha=%d mid=%d zeta=%d):\n%s", ia, im, iz, out)
	}
}

// TestCounterFuncConcurrentScrape hammers WritePrometheus from several
// goroutines while the backing value of a CounterFunc keeps moving —
// the live-scrape race the runtime and health gauges create in
// production. Run under -race this pins that function-backed metrics
// need no caller-side locking; the value assertions pin that every
// scrape sees a complete, parseable snapshot.
func TestCounterFuncConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var n atomic.Int64
	r.CounterFunc("caisp_test_live_total", "Live counter.", func() float64 {
		return float64(n.Load())
	})
	r.GaugeFunc("caisp_test_live_depth", "Live gauge.", func() float64 {
		return float64(n.Load())
	})

	const scrapers = 4
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // writer: the value moves during scrapes
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				n.Add(1)
			}
		}
	}()
	var scrapeErr atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					scrapeErr.Store(err.Error())
					return
				}
				out := sb.String()
				if !strings.Contains(out, "caisp_test_live_total ") ||
					!strings.Contains(out, "caisp_test_live_depth ") {
					scrapeErr.Store("incomplete scrape:\n" + out)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	if v := scrapeErr.Load(); v != nil {
		t.Fatalf("concurrent scrape failed: %v", v)
	}
	// A final quiesced scrape reports exactly the settled value.
	want := n.Load()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "caisp_test_live_total "+itoa(want)) {
		t.Fatalf("settled scrape missing value %d:\n%s", want, sb.String())
	}
}

// itoa avoids strconv in the hot assertion above.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
