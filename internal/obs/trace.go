package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Pipeline stage names stamped on traces. A trace's stage span is the
// time between the previous mark (or the trace start) and its own mark,
// so the five spans partition the end-to-end latency:
//
//	ingest     feed sink entry → dedup decision
//	correlate  dedup → cluster adoption in the flush
//	store      adoption → group-committed WAL write (fsync)
//	analyze    store commit → heuristic score computed
//	publish    score → eIoC write-back + dashboard upsert done
const (
	StageIngest    = "ingest"
	StageCorrelate = "correlate"
	StageStore     = "store_commit"
	StageAnalyze   = "analyze"
	StagePublish   = "publish"
)

// defaults for NewTracer.
const (
	defaultMaxActive   = 8192
	defaultKeepSlowest = 32
)

// StageSpan is one stage of a finished trace.
type StageSpan struct {
	Stage string  `json:"stage"`
	MS    float64 `json:"ms"`
}

// HopSpan is one mesh replication hop of a cross-node trace: the node
// that pulled the event and how long the event dwelled before that pull
// (time since the previous hop, or since origin ingest for the first
// hop). MS is negative when the upstream side carried no timestamp.
type HopSpan struct {
	Node string  `json:"node"`
	MS   float64 `json:"ms"`
}

// TraceRecord is one finished end-to-end trace.
type TraceRecord struct {
	// ID is the identity the trace finished under — the cluster UUID for
	// adopted pipeline traces, the normalized event ID otherwise.
	ID string `json:"id"`
	// Start is when the first member event entered the pipeline.
	Start time.Time `json:"start"`
	// TotalMS is the end-to-end wall time in milliseconds.
	TotalMS float64     `json:"total_ms"`
	Stages  []StageSpan `json:"stages,omitempty"`

	// Origin, OriginSeq and Hops are set on cross-node replication
	// traces (RecordImport): the node that first ingested the event, its
	// ingest sequence there, and the per-hop path the event took to
	// arrive here. Empty on single-node pipeline traces.
	Origin    string    `json:"origin,omitempty"`
	OriginSeq uint64    `json:"origin_seq,omitempty"`
	Hops      []HopSpan `json:"hops,omitempty"`
}

// trace is an in-flight journey.
type trace struct {
	id    string
	start time.Time
	marks []stageMark
}

type stageMark struct {
	stage string
	at    time.Time
}

// Tracer stamps each IoC's journey through the pipeline, feeding
// per-stage latency histograms and keeping a ring of the N slowest
// end-to-end traces with stage breakdowns. All methods are safe for
// concurrent use, and all methods on a nil *Tracer no-op, so the
// un-instrumented ablation costs one nil check.
//
// The active set is bounded: once maxActive journeys are in flight,
// Start evicts the oldest (counted in caisp_trace_dropped_total), so a
// stalled pipeline cannot grow the tracer without bound.
type Tracer struct {
	mu      sync.Mutex
	active  map[string]*trace
	fifo    []string      // Start order, for eviction
	slowest []TraceRecord // ascending by TotalMS, capped at keep
	imports []TraceRecord // most recent cross-node traces, capped at keep

	maxActive int
	keep      int
	now       func() time.Time

	stageHist *HistogramVec // caisp_trace_stage_seconds{stage}
	e2eHist   *Histogram    // caisp_trace_end_to_end_seconds
	finished  *Counter      // caisp_trace_finished_total
	dropped   *Counter      // caisp_trace_dropped_total
}

// TracerOption configures NewTracer.
type TracerOption interface{ apply(*Tracer) }

type maxActiveOption int

func (o maxActiveOption) apply(t *Tracer) {
	if o > 0 {
		t.maxActive = int(o)
	}
}

// WithMaxActive bounds the number of in-flight traces (default 8192).
func WithMaxActive(n int) TracerOption { return maxActiveOption(n) }

type keepSlowestOption int

func (o keepSlowestOption) apply(t *Tracer) {
	if o > 0 {
		t.keep = int(o)
	}
}

// WithKeepSlowest sets how many slowest finished traces are retained for
// GET /debug/traces (default 32).
func WithKeepSlowest(n int) TracerOption { return keepSlowestOption(n) }

type nowOption struct{ now func() time.Time }

func (o nowOption) apply(t *Tracer) { t.now = o.now }

// WithNow substitutes the tracer clock (tests).
func WithNow(now func() time.Time) TracerOption { return nowOption{now: now} }

// NewTracer builds a tracer registering its histograms and counters into
// reg. A nil registry yields a nil tracer — the no-op ablation.
func NewTracer(reg *Registry, opts ...TracerOption) *Tracer {
	if reg == nil {
		return nil
	}
	t := &Tracer{
		active:    make(map[string]*trace),
		maxActive: defaultMaxActive,
		keep:      defaultKeepSlowest,
		now:       time.Now,
		stageHist: reg.HistogramVec("caisp_trace_stage_seconds",
			"Per-stage latency of traced IoC journeys.", nil, "stage"),
		e2eHist: reg.Histogram("caisp_trace_end_to_end_seconds",
			"End-to-end latency from feed sink entry to dashboard upsert."),
		finished: reg.Counter("caisp_trace_finished_total",
			"Traces completed end to end."),
		dropped: reg.Counter("caisp_trace_dropped_total",
			"Traces evicted or abandoned before finishing."),
	}
	for _, o := range opts {
		o.apply(t)
	}
	return t
}

// Start begins a trace for id. An existing in-flight trace under the
// same id is restarted.
func (t *Tracer) Start(id string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.active) >= t.maxActive {
		t.evictOldestLocked()
	}
	if _, ok := t.active[id]; !ok {
		t.fifo = append(t.fifo, id)
	}
	t.active[id] = &trace{id: id, start: now}
}

// evictOldestLocked drops the oldest in-flight trace. Caller holds mu.
func (t *Tracer) evictOldestLocked() {
	for len(t.fifo) > 0 {
		victim := t.fifo[0]
		t.fifo = t.fifo[1:]
		if _, ok := t.active[victim]; ok {
			delete(t.active, victim)
			t.dropped.Inc()
			return
		}
	}
}

// Mark stamps the completion of a stage on an in-flight trace. Unknown
// ids are ignored (the trace was evicted or never started).
func (t *Tracer) Mark(id, stage string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr, ok := t.active[id]; ok {
		tr.marks = append(tr.marks, stageMark{stage: stage, at: now})
	}
}

// Adopt re-keys the journey of a cluster: the member traces are removed
// and the earliest-started one continues under newID with stage marked.
// Used at the flush boundary, where N normalized events become one
// cluster event. If no member has an in-flight trace, nothing happens.
func (t *Tracer) Adopt(newID, stage string, memberIDs []string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var oldest *trace
	for _, id := range memberIDs {
		tr, ok := t.active[id]
		if !ok {
			continue
		}
		delete(t.active, id)
		if oldest == nil || tr.start.Before(oldest.start) {
			oldest = tr
		}
	}
	if oldest == nil {
		return
	}
	if _, ok := t.active[newID]; !ok {
		t.fifo = append(t.fifo, newID)
	}
	oldest.id = newID
	oldest.marks = append(oldest.marks, stageMark{stage: stage, at: now})
	t.active[newID] = oldest
}

// Drop abandons an in-flight trace (duplicate event, unscorable
// cluster, retracted identity).
func (t *Tracer) Drop(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; ok {
		delete(t.active, id)
		t.dropped.Inc()
	}
}

// Finish completes a trace: the final stage is stamped, per-stage and
// end-to-end histograms observed, and the trace retained if it is among
// the slowest seen.
func (t *Tracer) Finish(id, finalStage string) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	tr, ok := t.active[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	delete(t.active, id)
	tr.marks = append(tr.marks, stageMark{stage: finalStage, at: now})

	total := now.Sub(tr.start)
	rec := TraceRecord{
		ID:      tr.id,
		Start:   tr.start,
		TotalMS: float64(total) / float64(time.Millisecond),
		Stages:  make([]StageSpan, 0, len(tr.marks)),
	}
	prev := tr.start
	for _, m := range tr.marks {
		span := m.at.Sub(prev)
		if span < 0 {
			span = 0
		}
		rec.Stages = append(rec.Stages, StageSpan{
			Stage: m.stage,
			MS:    float64(span) / float64(time.Millisecond),
		})
		prev = m.at
	}
	t.insertSlowestLocked(rec)
	t.mu.Unlock()

	// Observe outside the tracer lock: histograms are lock-free.
	for _, s := range rec.Stages {
		t.stageHist.With(s.Stage).Observe(s.MS / 1e3)
	}
	t.e2eHist.Observe(total.Seconds())
	t.finished.Inc()
}

// insertSlowestLocked keeps t.slowest sorted ascending by TotalMS and
// capped at t.keep. Caller holds mu.
func (t *Tracer) insertSlowestLocked(rec TraceRecord) {
	i := sort.Search(len(t.slowest), func(i int) bool {
		return t.slowest[i].TotalMS >= rec.TotalMS
	})
	if len(t.slowest) < t.keep {
		t.slowest = append(t.slowest, TraceRecord{})
		copy(t.slowest[i+1:], t.slowest[i:])
		t.slowest[i] = rec
		return
	}
	if i == 0 {
		return // faster than everything retained
	}
	// Drop the current fastest to make room.
	copy(t.slowest[:i-1], t.slowest[1:i])
	t.slowest[i-1] = rec
}

// RecordImport registers a finished cross-node replication trace: an
// event that originated on another node and just landed here over the
// mesh, carrying provenance p (with this node's own hop already
// appended by the importer). The record reconstructs the per-hop
// latencies from consecutive pull timestamps and is retained in a
// most-recent ring served on GET /debug/traces alongside the slowest
// pipeline traces. Nil-safe.
func (t *Tracer) RecordImport(uuid string, p *Provenance) {
	if t == nil || p == nil {
		return
	}
	now := t.now()
	rec := TraceRecord{
		ID:        uuid,
		Origin:    p.Origin,
		OriginSeq: p.OriginSeq,
		Start:     now,
	}
	if p.IngestUnixNano > 0 {
		rec.Start = time.Unix(0, p.IngestUnixNano)
		rec.TotalMS = float64(now.Sub(rec.Start)) / float64(time.Millisecond)
	}
	prev := p.IngestUnixNano
	for _, h := range p.Hops {
		ms := -1.0 // upstream carried no timestamp: dwell time unknown
		if prev > 0 && h.PulledUnixNano >= prev {
			ms = float64(h.PulledUnixNano-prev) / float64(time.Millisecond)
		}
		rec.Hops = append(rec.Hops, HopSpan{Node: h.Node, MS: ms})
		prev = h.PulledUnixNano
	}
	t.mu.Lock()
	t.imports = append(t.imports, rec)
	if len(t.imports) > t.keep {
		t.imports = t.imports[len(t.imports)-t.keep:]
	}
	t.mu.Unlock()
	t.finished.Inc()
}

// Imports returns the retained cross-node replication traces, newest
// first. Nil-safe.
func (t *Tracer) Imports() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, len(t.imports))
	for i := range t.imports {
		out[len(t.imports)-1-i] = t.imports[i]
	}
	return out
}

// Slowest returns the retained slowest traces, slowest first. Nil-safe.
func (t *Tracer) Slowest() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRecord, len(t.slowest))
	for i := range t.slowest {
		out[len(t.slowest)-1-i] = t.slowest[i]
	}
	return out
}

// Active reports the number of in-flight traces. Nil-safe.
func (t *Tracer) Active() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Handler serves the retained traces as JSON — GET /debug/traces: the
// slowest pipeline traces (slowest first) followed by the most recent
// cross-node replication traces (origin node + per-hop latencies).
// Nil-safe: a nil tracer serves an empty array.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := append(t.Slowest(), t.Imports()...)
		if recs == nil {
			recs = []TraceRecord{}
		}
		_ = json.NewEncoder(w).Encode(recs)
	})
}
