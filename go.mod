module github.com/caisplatform/caisp

go 1.22
