GO ?= go

.PHONY: build test race bench bench-read bench-durability bench-correlate bench-obs bench-fanout bench-subs bench-mesh bench-lifecycle wsload-smoke subload-smoke meshload-smoke lifeload-smoke obs-smoke vet copyfree metrics-lint check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Read-path suite: copy-free snapshot reads vs the clone-on-read baseline.
bench-read:
	$(GO) test -run '^$$' -bench '^BenchmarkRead' -benchmem .

# Durability suite: write-tail latency during streaming vs blocking
# compaction, and parallel vs serial cold-start recovery (50k events).
bench-durability:
	$(GO) test -run '^$$' -bench '^BenchmarkDurability' -benchmem .

# Correlation suite: streaming cluster index vs the recorrelate-all
# ablation over 1k/10k/50k streams, plus history-independence of the
# per-flush cost (empty vs 50k-preloaded correlator).
bench-correlate:
	$(GO) test -run '^$$' -bench '^BenchmarkCorrelate' -benchmem .

# Observability suite: the instrumented pipeline vs the DisableMetrics
# ablation — the per-event overhead number reported in EXPERIMENTS.md §X9.
bench-obs:
	$(GO) test -run '^$$' -bench '^BenchmarkObs' -benchmem .

# Fan-out suite: serial vs sharded broadcast, fast-only vs slow-mix client
# populations — the EXPERIMENTS.md §X10 numbers.
bench-fanout:
	$(GO) test -run '^$$' -bench '^BenchmarkFanout' -benchmem ./internal/wsock/

# Bounded load-harness smoke: 1k in-memory clients with a stalled cohort.
# The full 100k-client runs are documented in EXPERIMENTS.md §X10.
wsload-smoke:
	$(GO) run ./cmd/wsload -clients 1000 -slow 10 -probes 100 -messages 20 -interval 2ms -drain 15s

# Subscription suite: indexed pattern evaluation vs the WithLinearScan
# ablation across 1k/10k/100k standing patterns, registration churn, and
# the parse-time regexp precompilation deltas — the EXPERIMENTS.md §X11
# numbers.
bench-subs:
	$(GO) test -run '^$$' -bench '^BenchmarkSubs' -benchmem ./internal/subscribe/ ./internal/stixpattern/

# Streaming-detection smoke: 1k standing patterns, a 10%-hot event stream
# and live match fan-out. Exits nonzero if no matches fire or no frames
# reach the watchers. The 100k-pattern runs are in EXPERIMENTS.md §X11.
subload-smoke:
	$(GO) run ./cmd/subload -patterns 1000 -clients 8 -events 5000 -drain 15s

# Mesh suite: concurrent vs serial fan-in over simulated WAN peers — the
# EXPERIMENTS.md §X12 orchestration numbers.
bench-mesh:
	$(GO) test -run '^$$' -bench '^BenchmarkFanIn' -benchmem ./internal/mesh/

# Lifecycle suite: the bounded incremental re-score scheduler vs the
# WithRescanAll full-walk ablation at 10k/100k stored indicators — the
# EXPERIMENTS.md §X13 per-pass numbers.
bench-lifecycle:
	$(GO) test -run '^$$' -bench '^Benchmark(Incremental|RescanAll)Pass' -benchmem ./internal/lifecycle/

# Lifecycle smoke: sustained virtual-time ingest with decay expiry on.
# Exits nonzero unless the event count and heap plateau (and stay under
# the analytic bound) while total ingest keeps growing. The full-scale
# runs, the unbounded baseline and the 3-node deletion-convergence mode
# are in EXPERIMENTS.md §X13.
lifeload-smoke:
	$(GO) run ./cmd/lifeload -ticks 300 -rate 20 -step 1h -tau 60h -batch 1024

# Federation smoke: a 3-node replication ring over real loopback HTTP
# with a crash/restart mid-ingest. Exits nonzero unless every node
# converges to the identical event set (counts via /metrics + store
# digest) with zero steady-state re-imports. The 5-node runs and the
# serial-sync ablation are in EXPERIMENTS.md §X12.
meshload-smoke:
	$(GO) run ./cmd/meshload -nodes 3 -topology ring -events 600 -interval 15ms -drain 30s

# Observability smoke: boot caispd on scratch ports and assert every
# probe surface answers — /healthz (live), /readyz (ready with an "ok"
# verdict), /cluster/status (fleet-view payload with the node's role)
# and /metrics (build info present). Exits nonzero when the daemon does
# not come up within 15s or any probe fails.
obs-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/caispd ./cmd/caispd; \
	$$tmp/caispd -dashboard 127.0.0.1:18450 -tip 127.0.0.1:18440 -taxii '' -node smoke >$$tmp/log 2>&1 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null; rm -rf $$tmp" EXIT; \
	up=''; \
	for i in $$(seq 1 150); do \
		if curl -fsS http://127.0.0.1:18450/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.1; \
	done; \
	[ -n "$$up" ] || { echo 'obs-smoke: caispd did not come up'; cat $$tmp/log; exit 1; }; \
	curl -fsS http://127.0.0.1:18450/healthz | grep ok >/dev/null \
		|| { echo 'obs-smoke: /healthz failed'; exit 1; }; \
	curl -fsS http://127.0.0.1:18450/readyz | grep '"status":"ok"' >/dev/null \
		|| { echo 'obs-smoke: /readyz not ready'; exit 1; }; \
	curl -fsS http://127.0.0.1:18450/cluster/status | grep '"role":"caispd"' >/dev/null \
		|| { echo 'obs-smoke: /cluster/status failed'; exit 1; }; \
	curl -fsS http://127.0.0.1:18450/metrics | grep 'caisp_build_info' >/dev/null \
		|| { echo 'obs-smoke: /metrics missing build info'; exit 1; }; \
	echo 'obs-smoke: /healthz /readyz /cluster/status /metrics OK'

vet:
	$(GO) vet ./...

# Guard the copy-free read invariant: the only Clone() calls allowed in the
# storage package are pre-lock/post-lock copies, annotated "unlocked".
copyfree:
	@bad=$$(grep -n 'Clone()' internal/storage/*.go | grep -v '_test\.go' | grep -v 'unlocked' || true); \
	if [ -n "$$bad" ]; then \
		echo 'copyfree: unannotated Clone() in the storage read path (mark lock-free copies with "unlocked"):'; \
		echo "$$bad"; \
		exit 1; \
	fi

# Guard the metric-name contract: every caisp_* literal registered in
# non-test sources matches caisp_[a-z_]+ (lowercase, no digits) and is
# registered exactly once. ("caisp_" alone is the validator's own prefix
# constant; caisp_snapshot is a storage JSON tag, not a metric.)
metrics-lint:
	@names=$$(grep -rhoE '"caisp_[^"]*"' internal cmd --include='*.go' --exclude='*_test.go' \
		| grep -vx '"caisp_"' | grep -vx '"caisp_snapshot"'); \
	bad=$$(echo "$$names" | grep -vE '^"caisp_[a-z_]+"$$' || true); \
	if [ -n "$$bad" ]; then \
		echo 'metrics-lint: metric names must match caisp_[a-z_]+:'; \
		echo "$$bad"; \
		exit 1; \
	fi; \
	dup=$$(echo "$$names" | sort | uniq -d); \
	if [ -n "$$dup" ]; then \
		echo 'metrics-lint: metric names registered more than once:'; \
		echo "$$dup"; \
		exit 1; \
	fi; \
	for want in caisp_subs_registered caisp_subs_eval_seconds caisp_subs_matches_total caisp_subs_candidates_per_event caisp_subs_rejected_total \
		caisp_subs_expired_total \
		caisp_mesh_pages_total caisp_mesh_events_pulled_total caisp_mesh_events_imported_total caisp_mesh_echo_suppressed_total \
		caisp_mesh_conflicts_total caisp_mesh_lag_seconds caisp_mesh_sync_seconds caisp_mesh_deletes_applied_total \
		caisp_lifecycle_rescored_total caisp_lifecycle_expired_total caisp_lifecycle_sighting_refreshes_total \
		caisp_lifecycle_scan_seconds caisp_lifecycle_tracked \
		caisp_mesh_last_success_unix_seconds caisp_mesh_hop_latency_seconds caisp_mesh_replication_seconds \
		caisp_health_status caisp_health_check_status \
		caisp_build_info caisp_go_goroutines caisp_go_heap_bytes; do \
		echo "$$names" | grep -qx "\"$$want\"" || { \
			echo "metrics-lint: required metric $$want is not registered"; exit 1; }; \
	done; \
	echo "metrics-lint: $$(echo "$$names" | wc -l) metric name literals OK"

check: vet build test race copyfree metrics-lint obs-smoke wsload-smoke subload-smoke meshload-smoke lifeload-smoke
