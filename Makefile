GO ?= go

.PHONY: build test race bench bench-read bench-durability bench-correlate vet copyfree check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Read-path suite: copy-free snapshot reads vs the clone-on-read baseline.
bench-read:
	$(GO) test -run '^$$' -bench '^BenchmarkRead' -benchmem .

# Durability suite: write-tail latency during streaming vs blocking
# compaction, and parallel vs serial cold-start recovery (50k events).
bench-durability:
	$(GO) test -run '^$$' -bench '^BenchmarkDurability' -benchmem .

# Correlation suite: streaming cluster index vs the recorrelate-all
# ablation over 1k/10k/50k streams, plus history-independence of the
# per-flush cost (empty vs 50k-preloaded correlator).
bench-correlate:
	$(GO) test -run '^$$' -bench '^BenchmarkCorrelate' -benchmem .

vet:
	$(GO) vet ./...

# Guard the copy-free read invariant: the only Clone() calls allowed in the
# storage package are pre-lock/post-lock copies, annotated "unlocked".
copyfree:
	@bad=$$(grep -n 'Clone()' internal/storage/*.go | grep -v '_test\.go' | grep -v 'unlocked' || true); \
	if [ -n "$$bad" ]; then \
		echo 'copyfree: unannotated Clone() in the storage read path (mark lock-free copies with "unlocked"):'; \
		echo "$$bad"; \
		exit 1; \
	fi

check: vet build test race copyfree
