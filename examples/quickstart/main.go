// Quickstart: run one batch of the full pipeline over synthetic OSINT
// feeds and print what reached the dashboard.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/caisplatform/caisp"
)

func main() {
	// Six synthetic feeds (plaintext, CSV, MISP JSON, advisory JSON) with
	// 20% intra-feed duplication and 15% cross-feed overlap.
	feeds, err := caisp.SyntheticFeeds(42 /* seed */, 150 /* items */, 0.2, 0.15, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	// A platform over the paper's Table III inventory (the default).
	platform, err := caisp.New(caisp.Config{Feeds: feeds})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// Tell the platform what the infrastructure is seeing: an alarm and an
	// internally detected indicator influence the threat scores.
	if _, err := platform.ReportAlarm(caisp.Alarm{
		NodeID:      "node4",
		Severity:    caisp.SeverityHigh,
		SrcIP:       "198.51.100.77",
		DstIP:       "10.0.0.14",
		Description: "suspicious POST to apache struts endpoint",
		Application: "apache",
	}); err != nil {
		log.Fatal(err)
	}

	// One synchronous pipeline pass: poll → normalize → dedup → correlate
	// → store → score → reduce.
	if err := platform.RunBatch(context.Background()); err != nil {
		log.Fatal(err)
	}

	stats := platform.Stats()
	fmt.Printf("collected %d events (%d unique, %d duplicates folded)\n",
		stats.EventsCollected, stats.EventsUnique, stats.Duplicates)
	fmt.Printf("composed %d cIoCs, enriched %d eIoCs, %d rIoCs reached the dashboard\n\n",
		stats.CIoCs, stats.EIoCs, stats.RIoCs)

	fmt.Println(platform.Dashboard().RenderTopology())
	for _, r := range platform.Dashboard().RIoCs() {
		affected := fmt.Sprint(r.NodeIDs)
		if r.AllNodes {
			affected = "all nodes"
		}
		fmt.Printf("rIoC %-16s TS=%.4f (%s) affects %s\n", r.CVE, r.ThreatScore, r.Priority, affected)
	}
}
