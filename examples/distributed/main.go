// Distributed deployment, the paper's actual architecture (§IV-A): the
// MISP-like TIP instance and the heuristic component run as separate
// services connected only by the publish socket (the zeroMQ channel) and
// the REST API. An OSINT collector posts a cIoC to the TIP; the remote
// heuristic component scores it against its own inventory and writes the
// enriched IoC back.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"
	"time"

	"github.com/caisplatform/caisp/internal/bus"
	"github.com/caisplatform/caisp/internal/correlate"
	"github.com/caisplatform/caisp/internal/heuristic"
	"github.com/caisplatform/caisp/internal/infra"
	"github.com/caisplatform/caisp/internal/normalize"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/tip"
	"github.com/caisplatform/caisp/internal/worker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	evalTime := time.Date(2018, 6, 1, 12, 0, 0, 0, time.UTC)

	// --- Service 1: the TIP ("MISP instance") with its publish socket. --
	store, err := storage.Open("")
	if err != nil {
		return err
	}
	defer store.Close()
	broker := bus.NewBroker()
	defer broker.Close()
	pubSocket, err := broker.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer pubSocket.Close()
	service := tip.NewService(store, tip.WithBroker(broker), tip.WithName("misp-instance"))
	api := httptest.NewServer(tip.NewAPI(service, "shared-key"))
	defer api.Close()
	fmt.Printf("TIP:             %s (publish socket tcp://%s)\n", api.URL, pubSocket.Addr())

	// --- Service 2: the heuristic component (separate process shape). ---
	collector, err := infra.NewCollector(infra.PaperInventory())
	if err != nil {
		return err
	}
	w, err := worker.New(worker.Config{
		BusAddr:   pubSocket.Addr(),
		TIP:       tip.NewClient(api.URL, "shared-key"),
		Collector: collector,
		RIoCSink: func(r heuristic.RIoC) {
			fmt.Printf("rIoC:            %s TS=%.4f (%s) → nodes %v\n",
				r.CVE, r.ThreatScore, r.Priority, r.NodeIDs)
		},
		Now: func() time.Time { return evalTime },
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(ctx)
	}()
	defer func() {
		cancel()
		<-workerDone
	}()
	waitUntil(func() bool { return broker.TCPConns() == 1 })
	fmt.Println("heuristic:       subscribed to the publish socket")

	// --- Service 3: an OSINT collector posting a cIoC over the API. -----
	event, err := normalize.New("CVE-2017-9805", normalize.CategoryVulnExploit,
		"vuln-advisories", normalize.SourceOSINT, time.Date(2017, 9, 13, 0, 0, 0, 0, time.UTC))
	if err != nil {
		return err
	}
	event.Context = map[string]string{
		"description": "Apache Struts REST plugin XStream RCE",
		"cvss-vector": "CVSS:3.0/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"products":    "apache struts,apache",
		"os":          "debian",
		"published":   "2017-09-13",
		"references":  "https://capec.mitre.example/248,https://cve.mitre.example/CVE-2017-9805",
	}
	ciocs := correlate.New().Correlate([]normalize.Event{event})
	me, err := correlate.ToMISP(&ciocs[0], evalTime)
	if err != nil {
		return err
	}
	collectorClient := tip.NewClient(api.URL, "shared-key")
	if _, err := collectorClient.AddEvent(context.Background(), me); err != nil {
		return err
	}
	fmt.Println("collector:       cIoC posted to the TIP")

	// The enrichment happens asynchronously across the two services.
	waitUntil(func() bool { return w.Stats().Enriched == 1 })
	events, err := service.Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil || len(events) != 1 {
		return fmt.Errorf("eIoC not stored: %v", err)
	}
	for _, a := range events[0].Attributes {
		if strings.HasPrefix(a.Value, "threat-score:") {
			fmt.Printf("TIP (enriched):  %s\n", a.Value)
		}
	}
	st := w.Stats()
	fmt.Printf("worker stats:    received=%d enriched=%d riocs=%d\n",
		st.Received, st.Enriched, st.RIoCs)
	return nil
}

func waitUntil(cond func() bool) {
	for !cond() {
		time.Sleep(10 * time.Millisecond)
	}
}
