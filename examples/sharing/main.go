// Information sharing between organizations (paper §III-C2 / §IV-A): a
// producing platform scores an IoC and stores the eIoC in its TIP; a
// partner TIP instance pulls it over the MISP-like sync API; a non-MISP
// consumer fetches the same intelligence as STIX 2.0 over TAXII.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/caisplatform/caisp"
	"github.com/caisplatform/caisp/internal/experiments"
	"github.com/caisplatform/caisp/internal/storage"
	"github.com/caisplatform/caisp/internal/taxii"
	"github.com/caisplatform/caisp/internal/tip"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Producer: the full platform processes the RCE advisory and shares
	// the resulting eIoC.
	scenario, err := experiments.NewScenario()
	if err != nil {
		return err
	}
	defer scenario.Close()
	producer := scenario.Platform
	fmt.Printf("producer TIP stores %d events (%d eIoCs)\n",
		producer.TIP().Len(), producer.Stats().EIoCs)

	// --- MISP-style sharing: a partner TIP pulls over the REST API. ----
	producerAPI := httptest.NewServer(tip.NewAPI(producer.TIP(), "producer-key"))
	defer producerAPI.Close()

	partnerStore, err := storage.Open("")
	if err != nil {
		return err
	}
	defer partnerStore.Close()
	partner := tip.NewService(partnerStore, tip.WithName("partner"))
	imported, err := partner.SyncFrom(context.Background(), tip.NewClient(producerAPI.URL, "producer-key"), time.Time{})
	if err != nil {
		return err
	}
	fmt.Printf("partner TIP pulled %d events over the sync API\n", imported)

	eiocs, err := partner.Search(tip.SearchQuery{Tag: "caisp:eioc"})
	if err != nil {
		return err
	}
	for _, e := range eiocs {
		fmt.Printf("partner received eIoC %q (%d attributes)\n", e.Info, len(e.Attributes))
	}

	// --- STIX/TAXII sharing for non-MISP consumers. ---------------------
	taxiiServer := httptest.NewServer(producer.TAXII())
	defer taxiiServer.Close()
	consumer := taxii.NewClient(taxiiServer.URL, "")
	discovery, err := consumer.Discover()
	if err != nil {
		return err
	}
	fmt.Printf("\nTAXII discovery: %s (api roots %v)\n", discovery.Title, discovery.APIRoots)
	objs, err := consumer.AllObjects("caisp", "eiocs", time.Time{})
	if err != nil {
		return err
	}
	for _, obj := range objs {
		c := obj.GetCommon()
		score, _ := c.ExtraFloat("x_caisp_threat_score")
		fmt.Printf("consumer fetched %s  threat score %.4f\n", c.ID, score)
	}

	// The consumer re-scores against its own infrastructure context: a
	// Windows-only shop does not run Apache Struts, so the same
	// intelligence rates lower there (application: present 2 → absent 1).
	windowsShop := &caisp.Inventory{
		Nodes: []caisp.Node{
			{ID: "dc1", Name: "domain-controller", OS: "windows", Applications: []string{"windows", "active directory", "iis"}},
			{ID: "ws1", Name: "workstation", OS: "windows", Applications: []string{"windows", "office"}},
		},
	}
	for _, obj := range objs {
		if obj.GetCommon().Type != "vulnerability" {
			continue
		}
		res, err := caisp.Score(obj, windowsShop, experiments.EvalTime)
		if err != nil {
			continue
		}
		fmt.Printf("consumer re-scored %s against its windows-only inventory: TS=%.4f (%s)\n",
			obj.GetCommon().ID, res.Score, res.Priority())
	}
	return nil
}
