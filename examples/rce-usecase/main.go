// The paper's §IV use case end to end: an OSINT advisory reports the
// Apache Struts remote-code-execution vulnerability CVE-2017-9805; the
// platform composes, scores (TS = 2.7407, the paper prints 2.7406 from
// rounded weights), matches it to node4 of the Table III inventory and
// produces the dashboard artifacts of Figures 2–4.
package main

import (
	"fmt"
	"log"

	"github.com/caisplatform/caisp/internal/experiments"
)

func main() {
	tableV, err := experiments.RenderTableV()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tableV)

	scenario, err := experiments.NewScenario()
	if err != nil {
		log.Fatal(err)
	}
	defer scenario.Close()

	fmt.Println(scenario.RenderFig2())
	fig3, err := scenario.RenderFig3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig3)
	fig4, err := scenario.RenderFig4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig4)

	// The same IoC scored directly through the public API.
	res, err := scenario.Platform.Engine().Evaluate(experiments.UseCaseIoC())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct evaluation: TS=%.4f Cp=%.4f priority=%s\n",
		res.Score, res.Completeness, res.Priority())
}
