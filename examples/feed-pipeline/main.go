// Streaming pipeline over HTTP feeds: a synthetic feed server publishes
// OSINT documents, the platform polls them over HTTP with conditional GETs,
// and the dashboard serves the live topology while rIoCs arrive over its
// WebSocket. The example runs for a few seconds and prints what happened.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"github.com/caisplatform/caisp"
	"github.com/caisplatform/caisp/internal/feed"
	"github.com/caisplatform/caisp/internal/feedgen"
	"github.com/caisplatform/caisp/internal/normalize"
)

func main() {
	// A feed server: in production this is the open internet; here the
	// generator serves deterministic documents with ETag support.
	gen := feedgen.New(feedgen.Config{
		Seed: 7, Items: 120, DuplicationRate: 0.25, OverlapRate: 0.2, DefangRate: 0.4,
	})
	handler, err := gen.Handler()
	if err != nil {
		log.Fatal(err)
	}
	feedServer := httptest.NewServer(handler)
	defer feedServer.Close()

	// HTTP feeds with short intervals; the second poll hits the ETag path.
	var feeds []caisp.Feed
	for _, spec := range []struct {
		name, category string
		parser         feed.Parser
	}{
		{name: feedgen.FeedMalwareDomains, category: normalize.CategoryMalwareDomain, parser: feed.PlaintextParser{}},
		{name: feedgen.FeedBotnetIPs, category: normalize.CategoryBotnetC2, parser: feed.CSVParser{ValueColumn: 0, HasHeader: true}},
		{name: feedgen.FeedAdvisories, category: normalize.CategoryVulnExploit, parser: feed.AdvisoryParser{}},
	} {
		feeds = append(feeds, caisp.Feed{
			Name:     spec.name,
			Category: spec.category,
			Fetcher:  &feed.HTTPFetcher{URL: feedServer.URL + "/feeds/" + spec.name},
			Parser:   spec.parser,
			Interval: 500 * time.Millisecond,
		})
	}

	platform, err := caisp.New(caisp.Config{Feeds: feeds, ShareTAXII: true})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// The dashboard itself is an http.Handler; serve it while streaming.
	dashServer := httptest.NewServer(platform.Dashboard())
	defer dashServer.Close()
	fmt.Printf("dashboard (for the duration of this run): %s\n\n", dashServer.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := platform.Start(ctx, 300*time.Millisecond); err != nil {
		log.Fatal(err)
	}
	time.Sleep(3 * time.Second)
	platform.Stop()

	for name, st := range platform.FeedStats() {
		fmt.Printf("feed %-18s fetches=%d not-modified=%d records=%d errors=%d\n",
			name, st.Fetches, st.NotModified, st.Records, st.Errors)
	}
	stats := platform.Stats()
	fmt.Printf("\npipeline: collected=%d unique=%d duplicates=%d ciocs=%d eiocs=%d riocs=%d\n",
		stats.EventsCollected, stats.EventsUnique, stats.Duplicates,
		stats.CIoCs, stats.EIoCs, stats.RIoCs)
	fmt.Printf("dedup reduction: %.1f%%\n", platform.DedupStats().ReductionRatio()*100)
	fmt.Printf("taxii collection holds %d shared eIoC objects\n",
		platform.TAXII().ObjectCount("eiocs"))
}
